(* Tests for the many-valued logic layer: Kleene truth tables
   (Figure 3), the derived six-valued logic L6v and Theorem 5.3, the
   assertion operator, many-valued FO semantics with correctness
   guarantees (Theorem 5.1, Corollary 5.2), and the capture of
   many-valued FO by Boolean FO (Theorems 5.4 and 5.5). *)

open Incdb_relational
open Incdb_logic
open Helpers

(* ------------------------------------------------------------------ *)
(* Kleene's logic — Figure 3                                           *)
(* ------------------------------------------------------------------ *)

let kleene_tc : Kleene.t Alcotest.testable =
  Alcotest.testable Kleene.pp Kleene.equal

let test_kleene_tables () =
  let open Kleene in
  (* the exact truth tables of Figure 3 *)
  let conj_table =
    [ (T, T, T); (T, F, F); (T, U, U);
      (F, T, F); (F, F, F); (F, U, F);
      (U, T, U); (U, F, F); (U, U, U) ]
  in
  let disj_table =
    [ (T, T, T); (T, F, T); (T, U, T);
      (F, T, T); (F, F, F); (F, U, U);
      (U, T, T); (U, F, U); (U, U, U) ]
  in
  List.iter
    (fun (a, b, expected) ->
      Alcotest.check kleene_tc
        (Format.asprintf "%a ∧ %a" pp a pp b)
        expected (conj a b))
    conj_table;
  List.iter
    (fun (a, b, expected) ->
      Alcotest.check kleene_tc
        (Format.asprintf "%a ∨ %a" pp a pp b)
        expected (disj a b))
    disj_table;
  Alcotest.check kleene_tc "¬t" F (neg T);
  Alcotest.check kleene_tc "¬f" T (neg F);
  Alcotest.check kleene_tc "¬u" U (neg U)

let kleene_logic = Laws.of_module (module Kleene)
let boolean_logic = Laws.of_module (module Boolean)
let sixv_logic = Laws.of_module (module Sixv)

let test_kleene_laws () =
  Alcotest.(check bool) "idempotent" true (Laws.idempotent kleene_logic);
  Alcotest.(check bool) "distributive" true (Laws.distributive kleene_logic);
  Alcotest.(check bool) "commutative" true (Laws.commutative kleene_logic);
  Alcotest.(check bool) "associative" true (Laws.associative kleene_logic);
  Alcotest.(check bool) "de morgan" true (Laws.de_morgan kleene_logic);
  Alcotest.(check bool) "monotone in knowledge order" true
    (Laws.monotone ~le:Kleene.knowledge_le kleene_logic)

let test_boolean_laws () =
  Alcotest.(check bool) "distributive" true (Laws.distributive boolean_logic);
  Alcotest.(check bool) "idempotent" true (Laws.idempotent boolean_logic)

(* ------------------------------------------------------------------ *)
(* L6v and Theorem 5.3                                                 *)
(* ------------------------------------------------------------------ *)

let sixv_tc : Sixv.t Alcotest.testable = Alcotest.testable Sixv.pp Sixv.equal

let test_sixv_examples () =
  let open Sixv in
  (* s ∧ s can be all-false or mixed: "sometimes false" *)
  Alcotest.check sixv_tc "s ∧ s = sf" SF (conj S S);
  Alcotest.check sixv_tc "s ∨ s = st" ST (disj S S);
  Alcotest.check sixv_tc "¬s = s" S (neg S);
  Alcotest.check sixv_tc "¬st = sf" SF (neg ST);
  Alcotest.check sixv_tc "st ∧ st = u" U (conj ST ST);
  Alcotest.check sixv_tc "t ∧ sf = sf" SF (conj T SF);
  Alcotest.check sixv_tc "f ∧ anything = f" F (conj F ST)

let test_sixv_not_lattice_like () =
  Alcotest.(check bool) "not idempotent" false (Laws.idempotent sixv_logic);
  Alcotest.(check bool) "not distributive" false
    (Laws.distributive sixv_logic);
  Alcotest.(check bool) "commutative" true (Laws.commutative sixv_logic);
  Alcotest.(check bool) "de morgan" true (Laws.de_morgan sixv_logic);
  (* weak idempotency is what Boolean capture needs — L6v has it *)
  Alcotest.(check bool) "weakly idempotent" true
    (Laws.weakly_idempotent sixv_logic)

let test_sixv_restricts_to_kleene () =
  (* the image of Kleene's logic in L6v is closed and the operations
     agree with Kleene's tables *)
  let embed = Sixv.of_kleene in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let lhs = Sixv.conj (embed a) (embed b) in
          Alcotest.check sixv_tc
            (Format.asprintf "conj %a %a" Kleene.pp a Kleene.pp b)
            (embed (Kleene.conj a b)) lhs;
          let lhs = Sixv.disj (embed a) (embed b) in
          Alcotest.check sixv_tc
            (Format.asprintf "disj %a %a" Kleene.pp a Kleene.pp b)
            (embed (Kleene.disj a b)) lhs)
        Kleene.values;
      Alcotest.check sixv_tc
        (Format.asprintf "neg %a" Kleene.pp a)
        (embed (Kleene.neg a))
        (Sixv.neg (embed a)))
    Kleene.values

let test_theorem_5_3 () =
  (* the maximal distributive and idempotent sublogic of L6v is exactly
     {t, f, u} — Kleene's logic *)
  let satisfying l = Laws.distributive l && Laws.idempotent l in
  let maximal = Laws.maximal_sublogics ~satisfying sixv_logic in
  let expected = [ Sixv.T; Sixv.F; Sixv.U ] in
  let as_sets = List.map (List.sort_uniq compare) maximal in
  Alcotest.(check bool)
    (Format.asprintf "maximal sublogics: %d found" (List.length maximal))
    true
    (List.mem (List.sort_uniq compare expected) as_sets
     && List.for_all (fun s -> List.length s <= 3) as_sets)

let test_sixv_knowledge_order () =
  let open Sixv in
  Alcotest.(check bool) "u least" true
    (List.for_all (fun v -> knowledge_le U v) values);
  Alcotest.(check bool) "st ⪯ t" true (knowledge_le ST T);
  Alcotest.(check bool) "st ⪯ s" true (knowledge_le ST S);
  Alcotest.(check bool) "t and f incomparable" false
    (knowledge_le T F || knowledge_le F T);
  Alcotest.(check bool) "sf not ⪯ t" false (knowledge_le SF T)

(* ------------------------------------------------------------------ *)
(* The assertion operator                                              *)
(* ------------------------------------------------------------------ *)

let test_assertion () =
  Alcotest.check kleene_tc "↑t" Kleene.T (Assertion.assert_ Kleene.T);
  Alcotest.check kleene_tc "↑f" Kleene.F (Assertion.assert_ Kleene.F);
  Alcotest.check kleene_tc "↑u" Kleene.F (Assertion.assert_ Kleene.U);
  (* ↑ breaks knowledge monotonicity — the culprit of Section 5.2 *)
  match Assertion.knowledge_violation with
  | Some (a, b) ->
    Alcotest.check kleene_tc "witness low" Kleene.U a;
    Alcotest.check kleene_tc "witness high" Kleene.T b
  | None -> Alcotest.fail "expected a knowledge-order violation"

(* ------------------------------------------------------------------ *)
(* Many-valued FO semantics                                            *)
(* ------------------------------------------------------------------ *)

let db_ratom =
  Database.of_list test_schema [ ("R", [ tup [ i 1; nu 0 ] ]) ]

let test_atom_semantics () =
  let phi = Fo.Atom ("R", [ Fo.Var "x"; Fo.Var "y" ]) in
  let env = [ ("x", i 1); ("y", i 1) ] in
  (* the paper's example before Corollary 5.2: under the Boolean
     semantics R(1,1) is f — which breaks correctness guarantees *)
  Alcotest.check kleene_tc "bool semantics says f" Kleene.F
    (Semantics.eval Semantics.all_bool db_ratom env phi);
  (* the unification semantics correctly reports u: R(1,⊥) may be
     R(1,1) in some world *)
  Alcotest.check kleene_tc "unif semantics says u" Kleene.U
    (Semantics.eval Semantics.all_unif db_ratom env phi);
  (* nullfree: the atom's tuple (1,1) is null-free and not in R *)
  Alcotest.check kleene_tc "nullfree semantics says f" Kleene.F
    (Semantics.eval Semantics.all_nullfree db_ratom env phi)

let test_eq_semantics () =
  let eq = Fo.Eq (Fo.Var "x", Fo.Var "y") in
  let check name mixed env expected =
    Alcotest.check kleene_tc name expected
      (Semantics.eval mixed db_ratom env eq)
  in
  let null_pair = [ ("x", nu 0); ("y", nu 0) ] in
  (* same marked null: literally equal under bool and unif, but u in
     SQL (nullfree equality) *)
  check "bool: ⊥ = ⊥ is t" Semantics.all_bool null_pair Kleene.T;
  check "unif: ⊥ = ⊥ is t" Semantics.all_unif null_pair Kleene.T;
  check "sql: ⊥ = ⊥ is u" Semantics.sql null_pair Kleene.U;
  let mixed_pair = [ ("x", nu 0); ("y", i 3) ] in
  check "unif: ⊥ = 3 is u" Semantics.all_unif mixed_pair Kleene.U;
  check "sql: ⊥ = 3 is u" Semantics.sql mixed_pair Kleene.U;
  let consts = [ ("x", i 1); ("y", i 3) ] in
  check "unif: 1 = 3 is f" Semantics.all_unif consts Kleene.F

(* Corollary 5.2: the unif semantics has correctness guarantees:
   t answers are certain, f answers are certainly not answers *)
let prop_unif_correctness =
  QCheck2.Test.make ~count:50
    ~name:"Cor 5.2: ⟦φ⟧unif = t implies certain (and f certain-not)"
    ~print:(fun (db, phi) -> db_print db ^ "\n" ^ fo_print phi)
    QCheck2.Gen.(pair (gen_db ~max_size:2 ()) (gen_fo ()))
    (fun (db, phi) ->
      (* restrict to formulas without const/null tests: those atoms are
         two-valued and are not covered by the unification semantics'
         correctness statement *)
      let rec test_free = function
        | Fo.Is_const _ | Fo.Is_null _ -> false
        | Fo.Atom _ | Fo.Eq _ | Fo.Lt _ | Fo.Tru | Fo.Fls -> true
        | Fo.Not f | Fo.Exists (_, f) | Fo.Forall (_, f) | Fo.Assert f ->
          test_free f
        | Fo.And (f, g) | Fo.Or (f, g) -> test_free f && test_free g
      in
      if not (test_free phi) then true
      else begin
        let vars = Fo.free_vars phi in
        let worlds =
          Incdb_certain.Certainty.canonical_worlds
            ~query_consts:(Fo.consts phi) db
        in
        List.for_all
          (fun env ->
            let tuple = Tuple.of_list (List.map (fun x -> List.assoc x env) vars) in
            let holds_in_world (v, world) =
              let env' =
                List.map (fun (x, d) -> (x, Valuation.apply_value v d)) env
              in
              Semantics.eval_bool world env' phi
            in
            match Semantics.eval Semantics.all_unif db env phi with
            | Kleene.T -> List.for_all holds_in_world worlds
            | Kleene.F -> List.for_all (fun w -> not (holds_in_world w)) worlds
            | Kleene.U -> ignore tuple; true)
          (fo_assignments db phi)
      end)

(* on complete databases and null-free tuples the three atom semantics
   coincide (and are two-valued) *)
let prop_semantics_agree_on_complete =
  QCheck2.Test.make ~count:80
    ~name:"all atom semantics agree on complete data"
    QCheck2.Gen.(
      pair (gen_db ~null_rate:0.0 ~max_size:3 ()) (gen_tuple ~null_rate:0.0 2))
    (fun (db, t) ->
      let phi = Fo.Atom ("R", [ Fo.Var "x"; Fo.Var "y" ]) in
      let env = [ ("x", t.(0)); ("y", t.(1)) ] in
      let b = Semantics.eval Semantics.all_bool db env phi in
      let nf = Semantics.eval Semantics.all_nullfree db env phi in
      let un = Semantics.eval Semantics.all_unif db env phi in
      Kleene.equal b nf && Kleene.equal b un && not (Kleene.equal b Kleene.U))


(* positive formulae (∃,∀,∧,∨) are preserved under onto homomorphisms —
   the semantics between OWA and CWA of Section 4.1.  Soundness
   direction checked on random pairs: when an onto homomorphism
   D1 → D2 exists and a Boolean positive sentence holds in D1, it holds
   in D2. *)
let prop_positive_preserved_under_onto =
  QCheck2.Test.make ~count:80
    ~name:"positive sentences preserved under onto homomorphisms"
    ~print:(fun ((d1, d2), phi) ->
      db_print d1 ^ "\n" ^ db_print d2 ^ "\n" ^ fo_print phi)
    QCheck2.Gen.(
      pair
        (pair (gen_db ~max_size:2 ()) (gen_db ~null_rate:0.0 ~max_size:3 ()))
        (gen_fo_positive ()))
    (fun ((d1, d2), phi) ->
      (* close the formula existentially and evaluate naively: nulls as
         values on d1 (complete d2 needs no care) *)
      let closed = Fo.exists_many (Fo.free_vars phi) phi in
      if
        not
          (Incdb_relational.Homomorphism.exists
             ~kind:Incdb_relational.Homomorphism.Onto ~from_:d1 ~to_:d2 ())
      then true
      else if not (Semantics.eval_bool d1 [] closed) then true
      else Semantics.eval_bool d2 [] closed)

(* ------------------------------------------------------------------ *)
(* Capture by Boolean FO — Theorems 5.4 and 5.5                        *)
(* ------------------------------------------------------------------ *)

let capture_agrees mixed (db, phi) =
  List.for_all
    (fun env ->
      let actual = Semantics.eval mixed db env phi in
      List.for_all
        (fun tau ->
          let psi = Capture.truth_formula mixed phi tau in
          let captured = Semantics.eval_bool db env psi in
          Bool.equal captured (Kleene.equal actual tau))
        Kleene.values)
    (fo_assignments db phi)

let prop_capture_sql =
  QCheck2.Test.make ~count:120
    ~name:"Thm 5.4: Boolean FO captures FO(L3v) under the SQL semantics"
    ~print:(fun (db, phi) -> db_print db ^ "\n" ^ fo_print phi)
    QCheck2.Gen.(pair (gen_db ~max_size:2 ()) (gen_fo ()))
    (capture_agrees Semantics.sql)

let prop_capture_unif =
  QCheck2.Test.make ~count:60
    ~name:"Thm 5.4: capture under the unification semantics"
    ~print:(fun (db, phi) -> db_print db ^ "\n" ^ fo_print phi)
    QCheck2.Gen.(pair (gen_db ~max_size:2 ()) (gen_fo ()))
    (capture_agrees Semantics.all_unif)

let prop_capture_nullfree =
  QCheck2.Test.make ~count:60
    ~name:"Thm 5.4: capture under the null-free semantics"
    ~print:(fun (db, phi) -> db_print db ^ "\n" ^ fo_print phi)
    QCheck2.Gen.(pair (gen_db ~max_size:2 ()) (gen_fo ()))
    (capture_agrees Semantics.all_nullfree)

let prop_capture_assert =
  QCheck2.Test.make ~count:120
    ~name:"Thm 5.5: capture of FO↑SQL (with the assertion operator)"
    ~print:(fun (db, phi) -> db_print db ^ "\n" ^ fo_print phi)
    QCheck2.Gen.(pair (gen_db ~max_size:2 ()) (gen_fo ~allow_assert:true ()))
    (capture_agrees Semantics.sql)

(* the R − (S − T) example at the end of Section 5.1: SQL keeps 1 even
   though it is almost certainly false *)
let test_sql_almost_certainly_false () =
  let db =
    Database.of_list test_schema
      [ ("T", [ tup [ i 1 ] ]); ("U", [ tup [ i 1 ] ]) ]
  in
  (* R − (S − T) with R = S = {1}, T = {⊥}: encode with T as R, U as S
     and a fresh unary relation for T.  Our test schema lacks a third
     unary relation, so restate over R's columns: use R as binary
     container {(1,⊥)} and formula T(x) ∧ ¬(U(x) ∧ ¬∃y R(y, x)).
     Simpler: extend the schema locally. *)
  let schema =
    Schema.of_list [ ("A", [ "a" ]); ("B", [ "b" ]); ("C", [ "c" ]) ]
  in
  let db =
    ignore db;
    Database.of_list schema
      [ ("A", [ tup [ i 1 ] ]); ("B", [ tup [ i 1 ] ]); ("C", [ tup [ nu 0 ] ]) ]
  in
  (* SQL evaluates x ∈ A − (B − C) as nested NOT IN, with membership
     spelled out with equalities (that is where the u's arise) and ↑
     applied at each WHERE clause, per the FO↑SQL encoding of §5.2:

     φ(x) = A(x) ∧ ↑¬∃y (ψ(y) ∧ x = y)
     ψ(y) = B(y) ∧ ↑¬∃z (C(z) ∧ y = z) *)
  let member rel x body_var =
    Fo.Exists
      ( body_var,
        Fo.And (Fo.Atom (rel, [ Fo.Var body_var ]), Fo.Eq (x, Fo.Var body_var))
      )
  in
  let psi y =
    Fo.And
      (Fo.Atom ("B", [ y ]), Fo.Assert (Fo.Not (member "C" y "z")))
  in
  let phi =
    Fo.And
      ( Fo.Atom ("A", [ Fo.Var "x" ]),
        Fo.Assert
          (Fo.Not
             (Fo.Exists
                ( "y",
                  Fo.And (psi (Fo.Var "y"), Fo.Eq (Fo.Var "x", Fo.Var "y")) )))
      )
  in
  let env = [ ("x", i 1) ] in
  (* SQL answer: the inner NOT IN evaluates to u on 1 vs ⊥, the ↑ makes
     B − C empty, so 1 survives the outer difference *)
  Alcotest.check kleene_tc "SQL keeps 1" Kleene.T
    (Semantics.eval Semantics.sql db env phi);
  (* yet 1 is almost certainly false: in all but one world, 1 ∈ B − C *)
  let q =
    Algebra.Diff (Algebra.Rel "A", Algebra.Diff (Algebra.Rel "B", Algebra.Rel "C"))
  in
  Alcotest.(check bool) "µ(1) = 0" false
    (Incdb_prob.Zero_one.almost_certainly_true_ra db q (tup [ i 1 ]))

(* without ↑, FO(L3v) under the SQL semantics only returns almost
   certainly true answers ([52], discussed before Theorem 5.5) *)
let prop_no_assert_no_false_positives =
  QCheck2.Test.make ~count:50
    ~name:"FOSQL (no ↑): t answers are almost certainly true"
    ~print:(fun (db, phi) -> db_print db ^ "\n" ^ fo_print phi)
    QCheck2.Gen.(pair (gen_db ~max_size:2 ()) (gen_fo ()))
    (fun (db, phi) ->
      let rec test_free = function
        | Fo.Is_const _ | Fo.Is_null _ -> false
        | Fo.Atom _ | Fo.Eq _ | Fo.Lt _ | Fo.Tru | Fo.Fls -> true
        | Fo.Not f | Fo.Exists (_, f) | Fo.Forall (_, f) | Fo.Assert f ->
          test_free f
        | Fo.And (f, g) | Fo.Or (f, g) -> test_free f && test_free g
      in
      if not (test_free phi) then true
      else
        let run d = Semantics.certain_true Semantics.all_bool d phi in
        List.for_all
          (fun env ->
            match Semantics.eval Semantics.sql db env phi with
            | Kleene.T ->
              let vars = Fo.free_vars phi in
              let tuple =
                Tuple.of_list (List.map (fun x -> List.assoc x env) vars)
              in
              Incdb_prob.Zero_one.almost_certainly_true ~run db tuple
            | Kleene.F | Kleene.U -> true)
          (fo_assignments db phi))


(* ------------------------------------------------------------------ *)
(* FO concrete syntax                                                  *)
(* ------------------------------------------------------------------ *)

let test_fo_parser () =
  let open Fo in
  let p = Fo_parser.parse in
  Alcotest.(check string) "atom and negation"
    (to_string (Exists ("y", And (Atom ("R", [ Var "x"; Var "y" ]),
                                  Not (Eq (Var "y", Cst (Value.Str "paris")))))))
    (to_string (p "exists y. R(x, y) & ~(y = 'paris')"));
  Alcotest.(check string) "assert and order"
    (to_string (Assert (Lt (Var "x", Cst (Value.Int 5)))))
    (to_string (p "!(x < 5)"));
  Alcotest.(check string) "le desugars"
    (to_string (Not (Lt (Cst (Value.Int 5), Var "x"))))
    (to_string (p "x <= 5"));
  Alcotest.(check string) "quantifier block"
    (to_string (Forall ("x", Forall ("y", Or (Is_null (Var "x"),
                                              Is_const (Var "y"))))))
    (to_string (p "forall x y. null(x) | const(y)"));
  (* precedence: & binds tighter than | *)
  Alcotest.(check string) "precedence"
    (to_string (Or (And (Tru, Fls), Tru)))
    (to_string (p "true & false | true"));
  let fails input =
    match Fo_parser.parse input with
    | _ -> Alcotest.failf "accepted %s" input
    | exception Fo_parser.Parse_error _ -> ()
  in
  fails "exists . R(x)";
  fails "R(x";
  fails "x = ";
  fails "R(x) extra"

(* parse-evaluate smoke: the parsed formula behaves like the AST one *)
let test_fo_parser_eval () =
  let db =
    Database.of_list test_schema [ ("R", [ tup [ i 1; nu 0 ] ]) ]
  in
  let phi = Fo_parser.parse "exists y. R(1, y) & null(y)" in
  Alcotest.(check string) "parsed formula evaluates" "t"
    (Kleene.to_string (Semantics.eval Semantics.all_bool db [] phi))

(* ------------------------------------------------------------------ *)
(* Suite                                                               *)
(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "logic"
    [ ( "kleene",
        [ Alcotest.test_case "truth tables (Fig 3)" `Quick test_kleene_tables;
          Alcotest.test_case "laws" `Quick test_kleene_laws;
          Alcotest.test_case "boolean laws" `Quick test_boolean_laws ] );
      ( "sixv",
        [ Alcotest.test_case "derived connectives" `Quick test_sixv_examples;
          Alcotest.test_case "not distributive/idempotent" `Quick
            test_sixv_not_lattice_like;
          Alcotest.test_case "restricts to Kleene" `Quick
            test_sixv_restricts_to_kleene;
          Alcotest.test_case "Theorem 5.3" `Quick test_theorem_5_3;
          Alcotest.test_case "knowledge order" `Quick test_sixv_knowledge_order
        ] );
      ( "assertion",
        [ Alcotest.test_case "tables and violation" `Quick test_assertion ] );
      ( "fo-semantics",
        [ Alcotest.test_case "atom semantics" `Quick test_atom_semantics;
          Alcotest.test_case "equality semantics" `Quick test_eq_semantics;
          Alcotest.test_case "SQL almost-certainly-false" `Quick
            test_sql_almost_certainly_false ] );
      ( "fo-parser",
        [ Alcotest.test_case "grammar" `Quick test_fo_parser;
          Alcotest.test_case "parse and evaluate" `Quick test_fo_parser_eval ]
      );
      qsuite "fo-props"
        [ prop_unif_correctness; prop_semantics_agree_on_complete;
          prop_positive_preserved_under_onto ];
      qsuite "capture-props"
        [ prop_capture_sql; prop_capture_unif; prop_capture_nullfree;
          prop_capture_assert; prop_no_assert_no_false_positives ] ]
