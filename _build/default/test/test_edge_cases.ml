(* Edge-case regression suite: empty databases, arity-0 (Boolean)
   queries, self-comparisons on nulls, large labels, and pinned
   regressions for bugs found during development (the bag-valuation
   multiplicity merge, the duplicate-projection rule of Qᶠ, joint
   unifiability in the capture translation). *)

open Incdb_relational
open Incdb_certain
open Helpers

let empty_db = Database.of_list test_schema []

(* ------------------------------------------------------------------ *)
(* Empty databases                                                     *)
(* ------------------------------------------------------------------ *)

let test_empty_database () =
  let q = Algebra.Diff (Rel "T", Rel "U") in
  check_rel "eval" (rel 1 []) (Eval.run empty_db q);
  check_rel "certain" (rel 1 []) (Certainty.cert_with_nulls_ra empty_db q);
  check_rel "Q+" (rel 1 []) (Scheme_pm.certain_sub empty_db q);
  check_rel "Q?" (rel 1 []) (Scheme_pm.possible_sup empty_db q);
  check_rel "Qt" (rel 1 []) (Scheme_tf.certain_sub empty_db q);
  Alcotest.(check (pair int int)) "count range" (0, 0)
    (Aggregate.count_range empty_db q);
  Alcotest.(check int) "no canonical worlds beyond one" 1
    (List.length (Certainty.canonical_worlds ~query_consts:[] empty_db))

let test_empty_relation_ops () =
  let e = Relation.empty 2 in
  Alcotest.(check bool) "division by empty of arity 0" true
    (Relation.equal
       (Relation.division e (Relation.empty 0))
       (Relation.project [ 0; 1 ] e));
  check_rel "anti-semijoin with empty right" e (Relation.anti_unify_semijoin e e)

(* ------------------------------------------------------------------ *)
(* Boolean (arity-0) queries                                           *)
(* ------------------------------------------------------------------ *)

let test_boolean_queries () =
  let db =
    Database.of_list test_schema
      [ ("T", [ tup [ i 1 ] ]); ("U", [ tup [ nu 0 ] ]) ]
  in
  (* ∃x T(x): certainly true *)
  let q_t = Algebra.Project ([], Rel "T") in
  Alcotest.(check bool) "exists T certain" true
    (Certainty.certain_boolean db q_t);
  (* ∃x (T(x) − U(x)): true unless ⊥ = 1 *)
  let q_diff = Algebra.Project ([], Algebra.Diff (Rel "T", Rel "U")) in
  Alcotest.(check bool) "not certain" false
    (Certainty.certain_boolean db q_diff);
  Alcotest.(check bool) "but naively true" true (Naive.boolean db q_diff);
  (* Boolean query through the schemes: Q+ of a 0-ary query *)
  check_rel "Q+ boolean drops" (Relation.empty 0)
    (Scheme_pm.certain_sub db q_diff);
  check_rel "Q? boolean keeps" (Relation.of_list 0 [ Tuple.empty ])
    (Scheme_pm.possible_sup db q_diff)

(* ------------------------------------------------------------------ *)
(* Null self-comparisons                                               *)
(* ------------------------------------------------------------------ *)

let test_null_self_comparisons () =
  let db = Database.of_list test_schema [ ("R", [ tup [ nu 0; nu 0 ] ]) ] in
  (* σ(#0 = #1) on (⊥,⊥): certainly kept — same mark *)
  let q_eq = Algebra.Select (Condition.eq_col 0 1, Rel "R") in
  check_rel "same mark certainly equal" (rel 2 [ [ nu 0; nu 0 ] ])
    (Certainty.cert_with_nulls_ra db q_eq);
  (* σ(#0 ≠ #1) on (⊥,⊥): certainly empty *)
  let q_neq = Algebra.Select (Condition.neq_col 0 1, Rel "R") in
  check_rel "same mark never unequal" (rel 2 [])
    (Certainty.cert_with_nulls_ra db q_neq);
  check_rel "Q? agrees" (rel 2 []) (Scheme_pm.possible_sup db q_neq);
  (* σ(#0 < #1): never — and σ(#0 ≤ #1): always *)
  let q_lt = Algebra.Select (Condition.Lt (Condition.Col 0, Condition.Col 1), Rel "R") in
  check_rel "never strictly below itself" (rel 2 [])
    (Certainty.cert_with_nulls_ra db q_lt);
  let q_le = Algebra.Select (Condition.Le (Condition.Col 0, Condition.Col 1), Rel "R") in
  check_rel "always at most itself" (rel 2 [ [ nu 0; nu 0 ] ])
    (Certainty.cert_with_nulls_ra db q_le);
  (* the aware c-table strategy also certifies the ≤ case, which the
     syntactic star-guards of Q+ cannot *)
  check_rel "eager certifies ≤ on the same mark" (rel 2 [ [ nu 0; nu 0 ] ])
    (Incdb_ctables.Ceval.certain Incdb_ctables.Ceval.Eager db q_le);
  check_rel "Q+ stays conservative" (rel 2 []) (Scheme_pm.certain_sub db q_le)

(* ------------------------------------------------------------------ *)
(* Large labels and invented constants                                 *)
(* ------------------------------------------------------------------ *)

let test_large_labels () =
  let big = 1_000_000_007 in
  let db = Database.of_list test_schema [ ("T", [ tup [ Value.null big ] ]) ] in
  Alcotest.(check int) "fresh null above" (big + 1) (Database.fresh_null db);
  check_rel "certain keeps the big label"
    (rel 1 [ [ Value.null big ] ])
    (Certainty.cert_with_nulls_ra db (Rel "T"))

let test_gen_constants_are_distinct () =
  (* invented constants must not collide with user data *)
  Alcotest.(check bool) "Gen vs Int" false
    (Value.equal (Value.Const (Value.Gen 0)) (i 0));
  Alcotest.(check bool) "Gen vs Str" false
    (Value.equal (Value.Const (Value.Gen 0)) (s "@0"))

(* ------------------------------------------------------------------ *)
(* Pinned regressions                                                  *)
(* ------------------------------------------------------------------ *)

(* the Qᶠ projection rule needs duplicate-free projections; π[0,0] over
   a difference was translated incompletely before dedup_projections *)
let test_duplicate_projection_qt () =
  let db = Database.of_list test_schema [ ("R", [ tup [ i 1; i 0 ] ]) ] in
  let q =
    Algebra.Project
      ( [ 0 ],
        Algebra.Diff
          ( Algebra.Select (Condition.True, Rel "R"),
            Algebra.Project ([ 0; 0 ], Rel "R") ) )
  in
  (* complete database: Qt must equal Q *)
  check_rel "Qt complete-db equality with duplicated projection"
    (Eval.run db q) (Scheme_tf.certain_sub db q)

(* bag valuations must merge multiplicities before evaluation *)
let test_bag_merge_regression () =
  let db =
    Database.of_list test_schema
      [ ("T", [ tup [ i 1 ]; tup [ nu 0 ] ]); ("U", [ tup [ i 1 ] ]) ]
  in
  let q = Algebra.Diff (Rel "T", Rel "U") in
  Alcotest.(check int) "diamond sees the merged world" 1
    (Bag_bounds.diamond db q (tup [ i 1 ]))

(* joint unifiability in the capture translation: (⊥,⊥) vs (0,1) *)
let test_capture_joint_unifiability () =
  let db =
    Database.of_list test_schema
      [ ("S", [ tup [ i 0; i 1 ] ]); ("U", [ tup [ nu 0 ] ]) ]
  in
  let phi =
    Incdb_logic.Fo.Atom ("S", [ Incdb_logic.Fo.Var "x"; Incdb_logic.Fo.Var "x" ])
  in
  let env = [ ("x", nu 0) ] in
  (* (⊥,⊥) cannot unify with (0,1): certainly false under Unif *)
  Alcotest.(check string) "unif says f" "f"
    (Incdb_logic.Kleene.to_string
       (Incdb_logic.Semantics.eval Incdb_logic.Semantics.all_unif db env phi));
  let psi =
    Incdb_logic.Capture.truth_formula Incdb_logic.Semantics.all_unif phi
      Incdb_logic.Kleene.F
  in
  Alcotest.(check bool) "capture agrees" true
    (Incdb_logic.Semantics.eval_bool db env psi)

(* CSV: fresh NULL labels must not collide with later explicit marks *)
let test_csv_label_collision_regression () =
  let next = ref 0 in
  let _, r =
    Csv_io.relation_of_string ~next_null:next "a\nNULL\n_0\n"
  in
  Alcotest.(check int) "two distinct nulls" 2 (List.length (Relation.nulls r))

let () =
  Alcotest.run "edge-cases"
    [ ( "empty",
        [ Alcotest.test_case "empty database" `Quick test_empty_database;
          Alcotest.test_case "empty relation ops" `Quick
            test_empty_relation_ops ] );
      ( "boolean",
        [ Alcotest.test_case "arity-0 queries" `Quick test_boolean_queries ] );
      ( "null-self",
        [ Alcotest.test_case "self comparisons" `Quick
            test_null_self_comparisons ] );
      ( "labels",
        [ Alcotest.test_case "large labels" `Quick test_large_labels;
          Alcotest.test_case "gen constants" `Quick
            test_gen_constants_are_distinct ] );
      ( "regressions",
        [ Alcotest.test_case "duplicate projection Qt" `Quick
            test_duplicate_projection_qt;
          Alcotest.test_case "bag merge" `Quick test_bag_merge_regression;
          Alcotest.test_case "capture joint unifiability" `Quick
            test_capture_joint_unifiability;
          Alcotest.test_case "csv label collision" `Quick
            test_csv_label_collision_regression ] ) ]
