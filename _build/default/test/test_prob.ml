(* Tests for the probabilistic framework of Section 4.3: rationals and
   polynomial interpolation, supports and µₖ, the 0–1 law
   (Theorem 4.10), constraints, the chase, and exact conditional
   probabilities µ(Q | Σ, D, ā) (Theorem 4.11). *)

open Incdb_relational
open Incdb_prob
open Helpers

let rational_tc : Rational.t Alcotest.testable =
  Alcotest.testable Rational.pp Rational.equal

let r = Rational.make

(* ------------------------------------------------------------------ *)
(* Rationals                                                           *)
(* ------------------------------------------------------------------ *)

let test_rational_basics () =
  Alcotest.check rational_tc "normalisation" (r 1 2) (r 3 6);
  Alcotest.check rational_tc "negative denominator" (r (-1) 2) (r 1 (-2));
  Alcotest.check rational_tc "addition" (r 5 6) (Rational.add (r 1 2) (r 1 3));
  Alcotest.check rational_tc "subtraction" (r 1 6)
    (Rational.sub (r 1 2) (r 1 3));
  Alcotest.check rational_tc "multiplication" (r 1 3)
    (Rational.mul (r 2 3) (r 1 2));
  Alcotest.check rational_tc "division" (r 3 2) (Rational.div (r 1 2) (r 1 3));
  Alcotest.(check bool) "ordering" true (Rational.compare (r 1 3) (r 1 2) < 0);
  Alcotest.check_raises "zero denominator" Rational.Division_by_zero (fun () ->
      ignore (r 1 0))

let gen_rational : Rational.t QCheck2.Gen.t =
  QCheck2.Gen.(
    map2
      (fun p q -> Rational.make p (if q = 0 then 1 else q))
      (int_range (-30) 30) (int_range (-12) 12))

let prop_rational_field_laws =
  QCheck2.Test.make ~count:300 ~name:"rational field laws"
    QCheck2.Gen.(triple gen_rational gen_rational gen_rational)
    (fun (a, b, c) ->
      let open Rational in
      equal (add a b) (add b a)
      && equal (add (add a b) c) (add a (add b c))
      && equal (mul a (add b c)) (add (mul a b) (mul a c))
      && equal (sub a a) zero
      && (is_zero b || equal (mul (div a b) b) a))

(* ------------------------------------------------------------------ *)
(* Polynomials                                                         *)
(* ------------------------------------------------------------------ *)

let test_polynomial_interpolation () =
  (* interpolate k² − 1 through 3 points *)
  let f k = (k * k) - 1 in
  let points =
    List.map (fun k -> (Rational.of_int k, Rational.of_int (f k))) [ 2; 3; 5 ]
  in
  let p = Polynomial.interpolate points in
  Alcotest.(check int) "degree 2" 2 (Polynomial.degree p);
  Alcotest.check rational_tc "eval at 7" (Rational.of_int 48)
    (Polynomial.eval p (Rational.of_int 7));
  Alcotest.check rational_tc "leading coefficient" Rational.one
    (Polynomial.leading p)

let test_limit_ratio () =
  (* (k² − k) / (2k²) → 1/2; k / k² → 0 *)
  let interp f ks =
    Polynomial.interpolate
      (List.map (fun k -> (Rational.of_int k, Rational.of_int (f k))) ks)
  in
  let p = interp (fun k -> (k * k) - k) [ 1; 2; 3 ] in
  let q = interp (fun k -> 2 * k * k) [ 1; 2; 3 ] in
  Alcotest.check rational_tc "ratio 1/2" (r 1 2) (Polynomial.limit_ratio p q);
  let lin = interp (fun k -> k) [ 1; 2 ] in
  Alcotest.check rational_tc "lower degree gives 0" Rational.zero
    (Polynomial.limit_ratio lin q)

let prop_interpolation_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"interpolation hits all points"
    QCheck2.Gen.(list_size (int_range 1 4) (int_range (-10) 10))
    (fun ys ->
      let points =
        List.mapi (fun i y -> (Rational.of_int i, Rational.of_int y)) ys
      in
      let p = Polynomial.interpolate points in
      List.for_all
        (fun (x, y) -> Rational.equal (Polynomial.eval p x) y)
        points)

(* ------------------------------------------------------------------ *)
(* Supports and µₖ                                                     *)
(* ------------------------------------------------------------------ *)

let diff_db =
  (* R − S with R = {1}, S = {⊥}: the running example of Section 4.3 *)
  Database.of_list test_schema
    [ ("T", [ tup [ i 1 ] ]); ("U", [ tup [ nu 0 ] ]) ]

let diff_q = Algebra.Diff (Rel "T", Rel "U")

let run_diff db = Eval.run db diff_q

let test_mu_k_series () =
  (* µₖ((1)) = (k−1)/k: the tuple is an answer unless ⊥ ↦ 1 *)
  List.iter
    (fun k ->
      Alcotest.check rational_tc
        (Printf.sprintf "µ_%d" k)
        (r (k - 1) k)
        (Support.mu_k ~run:run_diff ~query_consts:[] diff_db (tup [ i 1 ]) ~k))
    [ 1; 2; 3; 5; 8 ]

let test_support_count () =
  Alcotest.(check int) "support size at k=4" 3
    (Support.support_count ~run:run_diff ~query_consts:[] diff_db
       (tup [ i 1 ]) ~k:4)

(* ------------------------------------------------------------------ *)
(* The 0–1 law (Theorem 4.10)                                          *)
(* ------------------------------------------------------------------ *)

let test_zero_one_example () =
  Alcotest.(check bool) "1 is almost certainly an answer" true
    (Zero_one.almost_certainly_true_ra diff_db diff_q (tup [ i 1 ]));
  Alcotest.check rational_tc "µ = 1" Rational.one
    (Zero_one.mu_ra diff_db diff_q (tup [ i 1 ]));
  Alcotest.check rational_tc "µ(⊥) = 0" Rational.zero
    (Zero_one.mu_ra diff_db diff_q (tup [ nu 0 ]))

(* Theorem 4.10 cross-validated: the interpolated limit of µₖ equals
   the 0–1 verdict of naive evaluation *)
let prop_zero_one_law =
  QCheck2.Test.make ~count:40
    ~name:"Thm 4.10: lim µₖ = 1 iff tuple ∈ naive eval"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(pair (gen_db ~max_size:2 ()) (gen_query ~allow_tests:false ()))
    (fun (db, q) ->
      let run d = Eval.run d q in
      let query_consts = Algebra.consts q in
      (* candidates: naive answers plus a certainly-non-answer probe *)
      let naive = Incdb_certain.Naive.run db q in
      let candidates = Relation.to_list naive in
      List.for_all
        (fun t ->
          let limit =
            Conditional.mu ~run ~query_consts ~sigma:[] db t
          in
          let naive_says = Relation.mem t naive in
          Rational.equal limit
            (if naive_says then Rational.one else Rational.zero))
        candidates)


(* the isomorphism-type variant (remark after Thm 4.10): different
   finite ratios, same limit — both 0-1 *)
let test_mu_isotypes_example () =
  (* µ_k((1)) = (k−1)/k counts valuations; counting world types, the
     k worlds {U = {c}} collapse by witness status into "c = 1" vs the
     k−1 others, but each distinct c is a distinct type, so here the
     ratios coincide *)
  List.iter
    (fun k ->
      Alcotest.check rational_tc
        (Printf.sprintf "isotype µ_%d" k)
        (r (k - 1) k)
        (Support.mu_k_isotypes ~run:run_diff ~query_consts:[] diff_db
           (tup [ i 1 ]) ~k))
    [ 2; 4; 8 ];
  (* a case where they differ at finite k: two nulls collapsing *)
  let db2 =
    Database.of_list test_schema
      [ ("T", [ tup [ i 1 ] ]); ("U", [ tup [ nu 0 ]; tup [ nu 1 ] ]) ]
  in
  let run2 d = Eval.run d (Algebra.Diff (Rel "T", Rel "U")) in
  let v = Support.mu_k ~run:run2 ~query_consts:[] db2 (tup [ i 1 ]) ~k:2 in
  let t = Support.mu_k_isotypes ~run:run2 ~query_consts:[] db2 (tup [ i 1 ]) ~k:2 in
  (* k=2 with two nulls: 4 valuations, only (c2,c2) keeps 1 → 1/4 by
     valuations, but the 3 valuations hitting c1 somewhere produce only
     2 distinct worlds, so types give 1/3 *)
  Alcotest.check rational_tc "valuations 1/4" (r 1 4) v;
  Alcotest.check rational_tc "types 1/3" (r 1 3) t

(* both counts have the same 0-1 limit on random instances *)
let prop_isotype_limit_agrees =
  QCheck2.Test.make ~count:20
    ~name:"isotype and valuation counting share the 0-1 verdict"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(pair (gen_db ~max_size:2 ()) (gen_query ~allow_tests:false ()))
    (fun (db, q) ->
      if List.length (Database.nulls db) > 2 then true
      else begin
        let run d = Eval.run d q in
        let query_consts = Algebra.consts q in
        let candidates = Relation.to_list (Incdb_certain.Naive.run db q) in
        (* at a comfortably large k both ratios are near their common
           limit: compare the verdicts at k and 2k for stability *)
        let verdict f =
          let known = List.length (Database.consts db) + List.length query_consts in
          let k = known + 8 in
          Rational.compare (f ~k) (r 1 2) > 0
        in
        List.for_all
          (fun t ->
            let naive_says = Incdb_certain.Naive.run db q |> Relation.mem t in
            let v_says =
              verdict (fun ~k ->
                  Support.mu_k ~run ~query_consts db t ~k)
            in
            let t_says =
              verdict (fun ~k ->
                  Support.mu_k_isotypes ~run ~query_consts db t ~k)
            in
            Bool.equal v_says naive_says && Bool.equal t_says naive_says)
          candidates
      end)

(* ------------------------------------------------------------------ *)
(* Constraints and the chase                                           *)
(* ------------------------------------------------------------------ *)

let test_constraints_satisfaction () =
  let db =
    Database.of_list test_schema
      [ ("R", [ tup [ i 1; i 2 ]; tup [ i 1; i 2 ]; tup [ i 2; i 3 ] ]);
        ("S", [ tup [ i 2; i 9 ] ]) ]
  in
  let fd_ok = Constraints.fd "R" [ 0 ] [ 1 ] in
  Alcotest.(check bool) "fd holds" true (Constraints.satisfied db fd_ok);
  let db_bad = Database.add_tuple db "R" (tup [ i 1; i 7 ]) in
  Alcotest.(check bool) "fd violated" false
    (Constraints.satisfied db_bad fd_ok);
  let ind_ok = Constraints.ind "S" [ 0 ] "R" [ 0 ] in
  Alcotest.(check bool) "ind holds" true (Constraints.satisfied db ind_ok);
  let ind_bad = Constraints.ind "S" [ 1 ] "R" [ 0 ] in
  Alcotest.(check bool) "ind violated" false
    (Constraints.satisfied db ind_bad)

let test_chase () =
  let db =
    Database.of_list test_schema
      [ ("R", [ tup [ i 1; nu 0 ]; tup [ i 1; i 3 ]; tup [ nu 0; i 5 ] ]) ]
  in
  let fds = [ { Constraints.fd_relation = "R"; lhs = [ 0 ]; rhs = [ 1 ] } ] in
  (match Chase.chase_fds db fds with
   | Chase.Failed -> Alcotest.fail "chase should succeed"
   | Chase.Chased (chased, subst) ->
     (* ⊥0 is equated with 3, everywhere *)
     check_rel "chased relation"
       (rel 2 [ [ i 1; i 3 ]; [ i 3; i 5 ] ])
       (Database.relation chased "R");
     Alcotest.check tuple_tc "substitution applies"
       (tup [ i 3 ])
       (Chase.apply_subst subst (tup [ nu 0 ])));
  let db_fail =
    Database.of_list test_schema
      [ ("R", [ tup [ i 1; i 2 ]; tup [ i 1; i 3 ] ]) ]
  in
  (match Chase.chase_fds db_fail fds with
   | Chase.Failed -> ()
   | Chase.Chased _ -> Alcotest.fail "chase should fail on constant clash")

(* chased databases satisfy their FDs *)
let prop_chase_fixpoint =
  QCheck2.Test.make ~count:100 ~name:"chase output satisfies the FDs"
    ~print:db_print
    (gen_db ~max_size:3 ())
    (fun db ->
      let fds = [ { Constraints.fd_relation = "R"; lhs = [ 0 ]; rhs = [ 1 ] } ] in
      match Chase.chase_fds db fds with
      | Chase.Failed -> true
      | Chase.Chased (chased, _) ->
        Constraints.all_satisfied chased (List.map (fun f -> Constraints.Fd f) fds))

(* ------------------------------------------------------------------ *)
(* Conditional probabilities (Theorem 4.11)                            *)
(* ------------------------------------------------------------------ *)

let test_conditional_paper_example () =
  (* T = {1, 2}, S = {⊥}, Σ = {S ⊆ T}: µ(T − S | Σ, (1)) = 1/2 *)
  let db =
    Database.of_list test_schema
      [ ("T", [ tup [ i 1 ]; tup [ i 2 ] ]); ("U", [ tup [ nu 0 ] ]) ]
  in
  let sigma = [ Constraints.ind "U" [ 0 ] "T" [ 0 ] ] in
  let q = Algebra.Diff (Rel "T", Rel "U") in
  let mu = Conditional.mu_ra ~sigma db q in
  Alcotest.check rational_tc "µ((1)) = 1/2" (r 1 2) (mu (tup [ i 1 ]));
  Alcotest.check rational_tc "µ((2)) = 1/2" (r 1 2) (mu (tup [ i 2 ]));
  (* and at every finite k the value is already 1/2 *)
  Alcotest.check rational_tc "µ₅ = 1/2" (r 1 2)
    (Conditional.mu_k ~run:(fun d -> Eval.run d q) ~query_consts:[] ~sigma db
       (tup [ i 1 ]) ~k:5)

let test_conditional_unconstrained_is_zero_one () =
  (* with Σ = ∅ the conditional µ reduces to the 0–1 law *)
  let mu = Conditional.mu_ra ~sigma:[] diff_db diff_q in
  Alcotest.check rational_tc "µ((1)) = 1" Rational.one (mu (tup [ i 1 ]))

(* FD-only constraints: the chase fast path agrees with the general
   interpolation computation *)
let prop_fd_chase_agrees =
  QCheck2.Test.make ~count:30
    ~name:"µ(Q|FDs) via chase = via interpolation"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(pair (gen_db ~max_size:2 ()) (gen_query ~allow_tests:false ()))
    (fun (db, q) ->
      let fds = [ { Constraints.fd_relation = "R"; lhs = [ 0 ]; rhs = [ 1 ] } ] in
      let sigma = List.map (fun f -> Constraints.Fd f) fds in
      let run d = Eval.run d q in
      let query_consts = Algebra.consts q in
      let candidates = Relation.to_list (Incdb_certain.Naive.run db q) in
      List.for_all
        (fun t ->
          let via_chase = Conditional.mu_fd_via_chase ~run ~fds db t in
          let via_interp = Conditional.mu ~run ~query_consts ~sigma db t in
          Rational.equal via_chase via_interp)
        candidates)

(* µ is a probability: always within [0, 1] *)
let prop_mu_in_unit_interval =
  QCheck2.Test.make ~count:30 ~name:"Thm 4.11: µ ∈ [0,1] and exists"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(pair (gen_db ~max_size:2 ()) (gen_query ~allow_tests:false ()))
    (fun (db, q) ->
      let sigma = [ Constraints.ind "U" [ 0 ] "T" [ 0 ] ] in
      let run d = Eval.run d q in
      let query_consts = Algebra.consts q in
      let candidates = Relation.to_list (Incdb_certain.Naive.run db q) in
      List.for_all
        (fun t ->
          let mu = Conditional.mu ~run ~query_consts ~sigma db t in
          Rational.compare mu Rational.zero >= 0
          && Rational.compare mu Rational.one <= 0)
        candidates)

(* ------------------------------------------------------------------ *)
(* Suite                                                               *)
(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "prob"
    [ ( "rational",
        [ Alcotest.test_case "basics" `Quick test_rational_basics ] );
      qsuite "rational-props" [ prop_rational_field_laws ];
      ( "polynomial",
        [ Alcotest.test_case "interpolation" `Quick
            test_polynomial_interpolation;
          Alcotest.test_case "limit ratio" `Quick test_limit_ratio ] );
      qsuite "polynomial-props" [ prop_interpolation_roundtrip ];
      ( "support",
        [ Alcotest.test_case "µₖ series" `Quick test_mu_k_series;
          Alcotest.test_case "support count" `Quick test_support_count ] );
      ( "zero-one",
        [ Alcotest.test_case "paper example" `Quick test_zero_one_example ] );
      qsuite "zero-one-props" [ prop_zero_one_law ];
      ( "isotypes",
        [ Alcotest.test_case "example ratios" `Quick test_mu_isotypes_example ]
      );
      qsuite "isotype-props" [ prop_isotype_limit_agrees ];
      ( "constraints",
        [ Alcotest.test_case "satisfaction" `Quick test_constraints_satisfaction;
          Alcotest.test_case "chase" `Quick test_chase ] );
      qsuite "chase-props" [ prop_chase_fixpoint ];
      ( "conditional",
        [ Alcotest.test_case "paper example 1/2" `Quick
            test_conditional_paper_example;
          Alcotest.test_case "empty sigma" `Quick
            test_conditional_unconstrained_is_zero_one ] );
      qsuite "conditional-props"
        [ prop_fd_chase_agrees; prop_mu_in_unit_interval ] ]
