(* Tests for the mini SQL front end: lexer, parser, SQL-faithful
   three-valued evaluation, and translation to relational algebra —
   including the full Figure 1 scenario of the paper's introduction
   (false negatives and false positives caused by a single NULL). *)

open Incdb_relational
open Incdb_sql
open Helpers

(* ------------------------------------------------------------------ *)
(* Lexer and parser                                                    *)
(* ------------------------------------------------------------------ *)

let test_lexer () =
  let tokens = Lexer.tokenize "SELECT o.oid FROM Orders o WHERE price <> 30" in
  Alcotest.(check int) "token count" 10 (List.length tokens);
  (match tokens with
   | Lexer.SELECT :: Lexer.QUALIFIED ("o", "oid") :: Lexer.FROM :: _ -> ()
   | _ -> Alcotest.fail "unexpected token stream");
  Alcotest.check_raises "unterminated string"
    (Lexer.Lex_error "unterminated string at offset 9") (fun () ->
      ignore (Lexer.tokenize "SELECT x 'oops"))

let test_parser_roundtrip () =
  let q =
    Parser.parse
      "SELECT oid FROM Orders WHERE oid NOT IN (SELECT oid FROM Payments)"
  in
  (match q with
   | Ast.Simple sq ->
     Alcotest.(check int) "one select item" 1 (List.length sq.Ast.select);
     (match sq.Ast.where with
      | Some (Ast.Not_in (Ast.Col (None, "oid"), Ast.Simple sub)) ->
        Alcotest.(check int) "subquery from" 1 (List.length sub.Ast.from)
      | _ -> Alcotest.fail "expected NOT IN")
   | Ast.Union _ -> Alcotest.fail "expected a simple query");
  (* keywords are case-insensitive *)
  (match Parser.parse "select * from T where x is not null" with
   | Ast.Simple { Ast.where = Some (Ast.Is_not_null _); _ } -> ()
   | _ -> Alcotest.fail "expected IS NOT NULL")

let test_parser_errors () =
  let bad input =
    match Parser.parse input with
    | _ -> Alcotest.failf "expected parse error for %s" input
    | exception Parser.Parse_error _ -> ()
  in
  bad "SELECT FROM T";
  bad "SELECT x FROM";
  bad "SELECT x FROM T WHERE";
  bad "SELECT x FROM T WHERE x = 1 extra"

(* ------------------------------------------------------------------ *)
(* Figure 1: the paper's running example                                *)
(* ------------------------------------------------------------------ *)

let fig1_schema =
  Schema.of_list
    [ ("Orders", [ "oid"; "title"; "price" ]);
      ("Payments", [ "cid"; "oid" ]);
      ("Customers", [ "cid"; "name" ]) ]

let fig1_complete =
  Database.of_list fig1_schema
    [ ("Orders",
       [ tup [ s "o1"; s "Big Data"; i 30 ];
         tup [ s "o2"; s "SQL"; i 35 ];
         tup [ s "o3"; s "Logic"; i 50 ] ]);
      ("Payments", [ tup [ s "c1"; s "o1" ]; tup [ s "c2"; s "o2" ] ]);
      ("Customers", [ tup [ s "c1"; s "John" ]; tup [ s "c2"; s "Mary" ] ]) ]

(* the same database with the oid of the second payment NULLed *)
let fig1_null =
  Database.of_list fig1_schema
    [ ("Orders",
       [ tup [ s "o1"; s "Big Data"; i 30 ];
         tup [ s "o2"; s "SQL"; i 35 ];
         tup [ s "o3"; s "Logic"; i 50 ] ]);
      ("Payments", [ tup [ s "c1"; s "o1" ]; tup [ s "c2"; nu 0 ] ]);
      ("Customers", [ tup [ s "c1"; s "John" ]; tup [ s "c2"; s "Mary" ] ]) ]

let unpaid_orders_sql =
  "SELECT oid FROM Orders WHERE oid NOT IN (SELECT oid FROM Payments)"

let no_paid_order_sql =
  "SELECT C.cid FROM Customers C WHERE NOT EXISTS (SELECT * FROM Orders O, \
   Payments P WHERE C.cid = P.cid AND P.oid = O.oid)"

let tautology_sql =
  "SELECT cid FROM Payments WHERE oid = 'o2' OR oid <> 'o2'"

let test_fig1_complete () =
  (* on the complete database everything behaves as expected *)
  check_rel "unpaid orders = {o3}" (rel 1 [ [ s "o3" ] ])
    (Three_valued.run fig1_complete unpaid_orders_sql);
  check_rel "customers without a paid order = {}" (rel 1 [])
    (Three_valued.run fig1_complete no_paid_order_sql);
  check_rel "tautology query = {c1, c2}" (rel 1 [ [ s "c1" ]; [ s "c2" ] ])
    (Three_valued.run fig1_complete tautology_sql)

let test_fig1_with_null () =
  (* a single NULL changes the answers drastically, in different ways *)
  check_rel "unpaid orders now empty" (rel 1 [])
    (Three_valued.run fig1_null unpaid_orders_sql);
  check_rel "c2 appears — a false positive" (rel 1 [ [ s "c2" ] ])
    (Three_valued.run fig1_null no_paid_order_sql);
  (* SQL misses c2: the certain answer is {c1, c2} *)
  check_rel "tautology query loses c2" (rel 1 [ [ s "c1" ] ])
    (Three_valued.run fig1_null tautology_sql)

let test_fig1_certain_answers () =
  (* ground truth via the exact certain-answer machinery on the
     translated algebra queries *)
  let unpaid = To_algebra.translate_string fig1_schema unpaid_orders_sql in
  let no_paid = To_algebra.translate_string fig1_schema no_paid_order_sql in
  let taut = To_algebra.translate_string fig1_schema tautology_sql in
  check_rel "cert⊥(unpaid) = {} (no false negative)" (rel 1 [])
    (Incdb_certain.Certainty.cert_with_nulls_ra fig1_null unpaid);
  check_rel "cert⊥(no paid order) = {} (c2 is a false positive)" (rel 1 [])
    (Incdb_certain.Certainty.cert_with_nulls_ra fig1_null no_paid);
  check_rel "cert⊥(tautology) = {c1, c2}" (rel 1 [ [ s "c1" ]; [ s "c2" ] ])
    (Incdb_certain.Certainty.cert_with_nulls_ra fig1_null taut);
  (* the sound approximation never returns the false positive *)
  check_rel "Q⁺(no paid order) = {}" (rel 1 [])
    (Incdb_certain.Scheme_pm.certain_sub fig1_null no_paid)

(* ------------------------------------------------------------------ *)
(* Translation to algebra                                              *)
(* ------------------------------------------------------------------ *)

(* on complete databases, SQL 3VL evaluation and the two-valued
   evaluation of the translated query agree *)
let fig1_queries =
  [ unpaid_orders_sql; no_paid_order_sql; tautology_sql;
    "SELECT oid FROM Orders WHERE price = 30";
    "SELECT O.oid FROM Orders O, Payments P WHERE O.oid = P.oid";
    "SELECT oid FROM Orders WHERE oid IN (SELECT oid FROM Payments)";
    "SELECT name FROM Customers WHERE EXISTS (SELECT * FROM Payments P \
     WHERE P.cid = Customers.cid)";
    "SELECT oid FROM Orders WHERE price <> 30 AND price <> 35";
    "SELECT oid FROM Orders WHERE price < 40";
    "SELECT oid FROM Orders WHERE price >= 35 AND price <= 50";
    "SELECT title FROM Orders WHERE price = 30 OR price = 50" ]

let test_translation_agrees_on_complete () =
  List.iter
    (fun sql ->
      let via_sql = Three_valued.run fig1_complete sql in
      let q = To_algebra.translate_string fig1_schema sql in
      let via_algebra = Eval.run fig1_complete q in
      Alcotest.check relation_tc sql via_sql via_algebra)
    fig1_queries

(* SQL's answers are a superset of Q⁺ and a subset of Q? only in the
   absence of negation; in general they are sandwiched by nothing —
   but on complete databases everything coincides *)
let test_translation_no_nulls_identity () =
  List.iter
    (fun sql ->
      let q = To_algebra.translate_string fig1_schema sql in
      let reference = Eval.run fig1_complete q in
      check_rel sql reference
        (Incdb_certain.Scheme_pm.certain_sub fig1_complete q))
    fig1_queries

(* SQL evaluation on randomly nulled databases: the certain answers
   under-approximate is not guaranteed for SQL (that is the point), but
   Q⁺ of the translation is always sound *)
let prop_translated_plus_sound =
  QCheck2.Test.make ~count:25 ~name:"Q⁺ of translated SQL is sound"
    (QCheck2.Gen.oneofl fig1_queries)
    (fun sql ->
      let q = To_algebra.translate_string fig1_schema sql in
      Relation.subset
        (Incdb_certain.Scheme_pm.certain_sub fig1_null q)
        (Incdb_certain.Certainty.cert_with_nulls_ra fig1_null q))

(* three-valued evaluation agrees with the two-valued one on complete
   databases for random predicates *)
let test_three_valued_null_semantics () =
  let db =
    Database.of_list fig1_schema
      [ ("Payments", [ tup [ s "c1"; nu 0 ] ]) ]
  in
  (* NULL = NULL is unknown: the row is filtered out *)
  check_rel "null = null filtered" (rel 1 [])
    (Three_valued.run db "SELECT cid FROM Payments WHERE oid = oid");
  (* IS NULL sees it *)
  check_rel "IS NULL works" (rel 1 [ [ s "c1" ] ])
    (Three_valued.run db "SELECT cid FROM Payments WHERE oid IS NULL");
  (* NOT (u) = u: still filtered *)
  check_rel "NOT of unknown filtered" (rel 1 [])
    (Three_valued.run db "SELECT cid FROM Payments WHERE NOT (oid = oid)")

let test_sql_errors () =
  let db = fig1_complete in
  let fails sql =
    match Three_valued.run db sql with
    | _ -> Alcotest.failf "expected Sql_error for %s" sql
    | exception Three_valued.Sql_error _ -> ()
  in
  fails "SELECT x FROM Orders";
  fails "SELECT oid FROM Nope";
  fails "SELECT Z.oid FROM Orders O"


(* UNION, IN-lists and DISTINCT *)
let test_union_and_in_list () =
  check_rel "UNION merges branches"
    (rel 1 [ [ s "o1" ]; [ s "o3" ] ])
    (Three_valued.run fig1_complete
       "SELECT oid FROM Orders WHERE price = 30 UNION SELECT oid FROM \
        Orders WHERE price = 50");
  check_rel "IN literal list"
    (rel 1 [ [ s "o1" ]; [ s "o2" ] ])
    (Three_valued.run fig1_complete
       "SELECT oid FROM Orders WHERE price IN (30, 35)");
  check_rel "NOT IN literal list"
    (rel 1 [ [ s "o3" ] ])
    (Three_valued.run fig1_complete
       "SELECT oid FROM Orders WHERE price NOT IN (30, 35)");
  check_rel "DISTINCT is accepted"
    (rel 1 [ [ s "John" ]; [ s "Mary" ] ])
    (Three_valued.run fig1_complete "SELECT DISTINCT name FROM Customers");
  (* NOT IN a list is unknown when the column is null: row filtered *)
  check_rel "NOT IN list with NULL filters"
    (rel 1 [ [ s "c1" ] ])
    (Three_valued.run fig1_null
       "SELECT cid FROM Payments WHERE oid NOT IN ('o3', 'o4')")

let test_union_translation () =
  let queries =
    [ "SELECT oid FROM Orders WHERE price = 30 UNION SELECT oid FROM Orders \
       WHERE price = 50";
      "SELECT oid FROM Orders WHERE price IN (30, 35)";
      "SELECT oid FROM Orders WHERE price NOT IN (30, 35)";
      "SELECT oid FROM Orders WHERE oid IN (SELECT oid FROM Payments UNION \
       SELECT oid FROM Orders WHERE price = 50)";
      "SELECT oid FROM Orders WHERE oid NOT IN (SELECT oid FROM Payments \
       UNION SELECT oid FROM Orders WHERE price = 50)" ]
  in
  List.iter
    (fun sql ->
      let via_sql = Three_valued.run fig1_complete sql in
      let q = To_algebra.translate_string fig1_schema sql in
      Alcotest.check relation_tc sql via_sql (Eval.run fig1_complete q))
    queries


(* typed order comparisons (Section 6, "types of attributes") *)
let test_order_comparisons () =
  check_rel "price < 40" (rel 1 [ [ s "o1" ]; [ s "o2" ] ])
    (Three_valued.run fig1_complete "SELECT oid FROM Orders WHERE price < 40");
  check_rel "price >= 35" (rel 1 [ [ s "o2" ]; [ s "o3" ] ])
    (Three_valued.run fig1_complete "SELECT oid FROM Orders WHERE price >= 35");
  (* with a NULL price, comparisons are unknown and the row is filtered *)
  let schema = Schema.of_list [ ("Items", [ "sku"; "price" ]) ] in
  let db =
    Database.of_list schema
      [ ("Items", [ tup [ i 1; i 30 ]; tup [ i 2; nu 0 ] ]) ]
  in
  check_rel "NULL price filtered by SQL" (rel 1 [ [ i 1 ] ])
    (Three_valued.run db "SELECT sku FROM Items WHERE price < 40");
  (* the sound scheme agrees: only sku 1 is certain, sku 2 possible *)
  let q = To_algebra.translate_string schema "SELECT sku FROM Items WHERE price < 40" in
  check_rel "Q+ on order comparison" (rel 1 [ [ i 1 ] ])
    (Incdb_certain.Scheme_pm.certain_sub db q);
  check_rel "Q? keeps the unknown" (rel 1 [ [ i 1 ]; [ i 2 ] ])
    (Incdb_certain.Scheme_pm.possible_sup db q);
  check_rel "cert-bot agrees with Q+ here" (rel 1 [ [ i 1 ] ])
    (Incdb_certain.Certainty.cert_with_nulls_ra db q)

(* ------------------------------------------------------------------ *)
(* Suite                                                               *)
(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "sql"
    [ ( "lexing-parsing",
        [ Alcotest.test_case "lexer" `Quick test_lexer;
          Alcotest.test_case "parser roundtrip" `Quick test_parser_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parser_errors ] );
      ( "figure-1",
        [ Alcotest.test_case "complete database" `Quick test_fig1_complete;
          Alcotest.test_case "one NULL changes everything" `Quick
            test_fig1_with_null;
          Alcotest.test_case "certain answers ground truth" `Quick
            test_fig1_certain_answers ] );
      ( "translation",
        [ Alcotest.test_case "agrees on complete data" `Quick
            test_translation_agrees_on_complete;
          Alcotest.test_case "Q⁺ lossless on complete data" `Quick
            test_translation_no_nulls_identity ] );
      qsuite "translation-props" [ prop_translated_plus_sound ];
      ( "sql-extensions",
        [ Alcotest.test_case "union / in-list / distinct" `Quick
            test_union_and_in_list;
          Alcotest.test_case "union translation" `Quick
            test_union_translation ] );
      ( "order-comparisons",
        [ Alcotest.test_case "< <= > >= end to end" `Quick
            test_order_comparisons ] );
      ( "three-valued",
        [ Alcotest.test_case "null comparison semantics" `Quick
            test_three_valued_null_semantics;
          Alcotest.test_case "error reporting" `Quick test_sql_errors ] ) ]
