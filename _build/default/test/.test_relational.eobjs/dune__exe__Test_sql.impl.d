test/test_sql.ml: Alcotest Ast Database Eval Helpers Incdb_certain Incdb_relational Incdb_sql Lexer List Parser QCheck2 QCheck_alcotest Relation Schema Three_valued To_algebra
