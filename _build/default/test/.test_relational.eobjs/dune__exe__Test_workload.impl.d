test/test_workload.ml: Alcotest Algebra Array Database Eval Generator Helpers Incdb_certain Incdb_relational Incdb_workload List Printf Relation Tpch_mini Value
