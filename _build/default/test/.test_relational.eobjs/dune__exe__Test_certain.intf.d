test/test_certain.mli:
