test/test_datalog.ml: Alcotest Array Database Eval Helpers Incdb_datalog Incdb_relational List Parser QCheck2 QCheck_alcotest Relation Schema Stratified Syntax Value
