test/test_ctables.mli:
