test/test_relational.ml: Alcotest Algebra Array Bag_relation Condition Database Eval Helpers Homomorphism Incdb_relational Int List QCheck2 QCheck_alcotest Relation Schema Tuple Valuation Value
