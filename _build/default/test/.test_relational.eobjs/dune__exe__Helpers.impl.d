test/helpers.ml: Alcotest Algebra Condition Database Format Gen Incdb_logic Incdb_relational List QCheck2 Relation Schema Tuple Value
