(* Tests for exact certain answers, naive evaluation, the two
   approximation schemes of Figure 2, and bag-semantics bounds —
   the theorems of Sections 3 and 4 of the paper. *)

open Incdb_relational
open Incdb_certain
open Helpers

let unary_db tuples_t tuples_u =
  Database.of_list test_schema [ ("T", tuples_t); ("U", tuples_u) ]

(* ------------------------------------------------------------------ *)
(* Exact certain answers                                               *)
(* ------------------------------------------------------------------ *)

let test_cert_with_nulls_keeps_null () =
  (* D = {R(⊥)} and Q = R: cert⊥ = {⊥} but cert∩ = ∅ (Section 3.2) *)
  let db = unary_db [ tup [ nu 0 ] ] [] in
  let q = Algebra.Rel "T" in
  check_rel "cert⊥ keeps the null" (rel 1 [ [ nu 0 ] ])
    (Certainty.cert_with_nulls_ra db q);
  check_rel "cert∩ is empty" (rel 1 []) (Certainty.cert_intersection_ra db q)

let test_cert_difference_empty () =
  (* {1} − {⊥}: certain answers are empty, naive evaluation says {1} *)
  let db = unary_db [ tup [ i 1 ] ] [ tup [ nu 0 ] ] in
  let q = Algebra.Diff (Rel "T", Rel "U") in
  check_rel "cert⊥ empty" (rel 1 []) (Certainty.cert_with_nulls_ra db q);
  check_rel "naive keeps 1" (rel 1 [ [ i 1 ] ]) (Naive.run db q)

let test_cert_tautology_disjunction () =
  (* σ(A=2 ∨ A≠2)(T) on T = {⊥}: ⊥ is certain — it equals 2 or not in
     every world (the intro's 'oid = o2 OR oid <> o2' example) *)
  let db = unary_db [ tup [ nu 0 ] ] [] in
  let q =
    Algebra.Select
      ( Condition.Or
          (Condition.eq_const 0 (Value.Int 2),
           Condition.neq_const 0 (Value.Int 2)),
        Algebra.Rel "T" )
  in
  check_rel "tautology certain" (rel 1 [ [ nu 0 ] ])
    (Certainty.cert_with_nulls_ra db q)

let test_certain_boolean () =
  (* path 1 → ⊥ → 2 makes ∃ path of length 2 certain *)
  let db =
    Database.of_list test_schema
      [ ("R", [ tup [ i 1; nu 0 ]; tup [ nu 0; i 2 ] ]) ]
  in
  let q =
    (* Boolean query: project everything away after a join checking
       R(1,x), R(x,2) *)
    Algebra.Project
      ( [],
        Algebra.Select
          ( Condition.And
              ( Condition.And
                  (Condition.eq_const 0 (Value.Int 1),
                   Condition.eq_col 1 2),
                Condition.eq_const 3 (Value.Int 2) ),
            Algebra.Product (Rel "R", Rel "R") ) )
  in
  Alcotest.(check bool) "certain" true (Certainty.certain_boolean db q)

(* Proposition 3.10: cert∩ = cert⊥ ∩ Const^m, and the two ways of
   computing cert∩ agree *)
let prop_cert_intersection_consistent =
  QCheck2.Test.make ~count:60 ~name:"Prop 3.10: cert∩ = cert⊥ ∩ Const^m"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(pair (gen_db ~max_size:3 ()) (gen_query ()))
    (fun (db, q) ->
      let run d = Eval.run d q in
      let query_consts = Algebra.consts q in
      let via_bot = Certainty.cert_intersection ~run ~query_consts db in
      let direct = Certainty.cert_intersection_direct ~run ~query_consts db in
      Relation.equal via_bot direct)

(* cert⊥ is always a subset of the naive evaluation *)
let prop_cert_subset_naive =
  QCheck2.Test.make ~count:80 ~name:"cert⊥ ⊆ naive evaluation"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(pair (gen_db ~max_size:3 ()) (gen_query ()))
    (fun (db, q) ->
      Relation.subset (Certainty.cert_with_nulls_ra db q) (Naive.run db q))

(* the defining property of cert⊥, checked against brute-force
   enumeration over a *fixed* concrete valuation set rather than the
   canonical one (cross-validation of the canonical-pattern argument) *)
let prop_cert_brute_force =
  QCheck2.Test.make ~count:40 ~name:"cert⊥ agrees with brute-force check"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(pair (gen_db ~max_size:2 ()) (gen_query ()))
    (fun (db, q) ->
      let cert = Certainty.cert_with_nulls_ra db q in
      let nulls = Database.nulls db in
      (* a wide concrete range: all db/query constants plus 3 fresh *)
      let range =
        List.sort_uniq Value.compare_const
          (Database.consts db @ Algebra.consts q
          @ [ Value.Gen 90; Value.Gen 91; Value.Gen 92 ])
      in
      let vals = Valuation.enumerate ~nulls ~range in
      let candidates = Naive.run db q in
      let brute =
        Relation.filter
          (fun t ->
            List.for_all
              (fun v ->
                Relation.mem (Valuation.apply_tuple v t)
                  (Eval.run (Valuation.apply_db v db) q))
              vals)
          candidates
      in
      Relation.equal cert brute)


(* ------------------------------------------------------------------ *)
(* Certain answers as objects (Prop 3.6(b))                            *)
(* ------------------------------------------------------------------ *)

let answer_db r =
  let k = Relation.arity r in
  let schema = Schema.of_list [ ("ans", List.init k (Printf.sprintf "c%d")) ] in
  Database.set_relation (Database.create schema) "ans" r

let test_certain_object_example () =
  (* D = {R(1,⊥0), R(⊥1,2)}, Q = π0(R) ∪ π1(R): the object keeps
     informative nulls that cert∩ must drop *)
  let db =
    Database.of_list test_schema
      [ ("R", [ tup [ i 1; nu 0 ]; tup [ nu 1; i 2 ] ]) ]
  in
  let q =
    Algebra.Union
      (Algebra.Project ([ 0 ], Rel "R"), Algebra.Project ([ 1 ], Rel "R"))
  in
  let obj = Certainty.certain_object_ucq db q in
  Alcotest.(check bool) "keeps constants" true
    (Relation.mem (tup [ i 1 ]) obj && Relation.mem (tup [ i 2 ]) obj);
  (* the two nulls fold into the constants? no: a unary table with
     {1, 2, ⊥0, ⊥1} retracts nulls onto constants, so the core is just
     {1, 2} — the nulls here carry no extra information *)
  Alcotest.(check int) "core folds uninformative nulls" 2
    (Relation.cardinal obj);
  (* whereas with no constant at all the null is the information *)
  let db2 = Database.of_list test_schema [ ("T", [ tup [ nu 0 ] ]) ] in
  check_rel "lone null survives" (rel 1 [ [ nu 0 ] ])
    (Certainty.certain_object_ucq db2 (Rel "T"))

(* the object is a lower bound in the information order: it maps
   homomorphically (constants fixed) into the answer of every world *)
let prop_certain_object_lower_bound =
  QCheck2.Test.make ~count:50
    ~name:"Prop 3.6(b): certO maps into every world's answer"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(pair (gen_db ~max_size:3 ()) (gen_query ~positive:true ()))
    (fun (db, q) ->
      let obj = Certainty.certain_object_ucq db q in
      let worlds =
        Certainty.canonical_worlds ~query_consts:(Algebra.consts q) db
      in
      List.for_all
        (fun (_, world) ->
          Homomorphism.exists ~from_:(answer_db obj)
            ~to_:(answer_db (Eval.run world q))
            ())
        worlds)

(* the object is hom-equivalent to the naive answer (it is its core) *)
let prop_certain_object_equivalent =
  QCheck2.Test.make ~count:50 ~name:"certO is the core of the naive answer"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(pair (gen_db ~max_size:3 ()) (gen_query ~positive:true ()))
    (fun (db, q) ->
      let obj = Certainty.certain_object_ucq db q in
      let naive = Naive.run db q in
      Homomorphism.hom_equivalent (answer_db obj) (answer_db naive)
      && Relation.cardinal obj <= Relation.cardinal naive)

(* ------------------------------------------------------------------ *)
(* Naive evaluation (Theorem 4.4)                                      *)
(* ------------------------------------------------------------------ *)

(* UCQs: naive evaluation computes cert⊥ under CWA *)
let prop_naive_exact_for_ucq =
  QCheck2.Test.make ~count:200 ~name:"Thm 4.4: naive = cert⊥ for UCQs"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(pair (gen_db ~max_size:3 ()) (gen_query ~positive:true ()))
    (fun (db, q) ->
      Relation.equal (Naive.run db q) (Certainty.cert_with_nulls_ra db q))

(* Pos∀G (division) queries: naive evaluation computes cert⊥ under CWA *)
let prop_naive_exact_for_division =
  QCheck2.Test.make ~count:60
    ~name:"Thm 4.4: naive = cert⊥ for Pos∀G (division)"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(
      pair (gen_db ~max_size:3 ())
        (gen_query ~positive:true ~allow_division:true ()))
    (fun (db, q) ->
      if not (Classes.is_pos_forall_g q) then QCheck2.assume_fail ()
      else
        Relation.equal (Naive.run db q) (Certainty.cert_with_nulls_ra db q))

let test_division_example () =
  (* employees on all projects, with a null project reference *)
  let schema =
    Schema.of_list [ ("works", [ "emp"; "proj" ]); ("proj", [ "p" ]) ]
  in
  let db =
    Database.of_list schema
      [ ("works",
         [ tup [ s "ann"; i 1 ]; tup [ s "ann"; i 2 ]; tup [ s "bob"; nu 0 ] ]);
        ("proj", [ tup [ i 1 ]; tup [ i 2 ] ]) ]
  in
  let q = Algebra.Division (Rel "works", Rel "proj") in
  let naive = Naive.run db q in
  let cert =
    Certainty.cert_with_nulls ~run:(fun d -> Eval.run d q) ~query_consts:[] db
  in
  check_rel "Pos∀G: naive equals cert⊥" cert naive;
  check_rel "only ann is certain" (rel 1 [ [ s "ann" ] ]) naive

(* naive evaluation restricted to null-free tuples = cert∩ for UCQs
   (Theorem 4.1) *)
let prop_naive_nullfree_is_cert_cap =
  QCheck2.Test.make ~count:80
    ~name:"Thm 4.1: null-free naive answers = cert∩ for UCQs"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(pair (gen_db ~max_size:3 ()) (gen_query ~positive:true ()))
    (fun (db, q) ->
      let naive_nullfree =
        Relation.filter Tuple.is_complete (Naive.run db q)
      in
      Relation.equal naive_nullfree (Certainty.cert_intersection_ra db q))

(* ------------------------------------------------------------------ *)
(* The approximation schemes of Figure 2                               *)
(* ------------------------------------------------------------------ *)

let gen_scheme_inputs =
  QCheck2.Gen.(pair (gen_db ~max_size:3 ()) (gen_query ~allow_tests:false ()))

(* Theorem 4.7: Q⁺(D) ⊆ cert⊥(Q, D) *)
let prop_plus_sound =
  QCheck2.Test.make ~count:250 ~name:"Thm 4.7: Q⁺ ⊆ cert⊥"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    gen_scheme_inputs
    (fun (db, q) ->
      Relation.subset (Scheme_pm.certain_sub db q)
        (Certainty.cert_with_nulls_ra db q))

(* Theorem 4.7, sandwich property (5): v(Q⁺(D)) ⊆ Q(v(D)) ⊆ v(Q?(D)) *)
let prop_sandwich =
  QCheck2.Test.make ~count:150 ~name:"Thm 4.7: v(Q⁺) ⊆ Q(v(D)) ⊆ v(Q?)"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    gen_scheme_inputs
    (fun (db, q) ->
      let plus = Scheme_pm.certain_sub db q in
      let maybe = Scheme_pm.possible_sup db q in
      let worlds = Certainty.canonical_worlds ~query_consts:(Algebra.consts q) db in
      List.for_all
        (fun (v, world) ->
          let answer = Eval.run world q in
          Relation.subset (Valuation.apply_relation v plus) answer
          && Relation.subset answer (Valuation.apply_relation v maybe))
        worlds)

(* Theorem 4.6: Qᵗ(D) ⊆ cert⊥(Q, D) *)
let prop_t_sound =
  QCheck2.Test.make ~count:60 ~name:"Thm 4.6: Qᵗ ⊆ cert⊥"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(pair (gen_db ~max_size:2 ()) (gen_query ~allow_tests:false ()))
    (fun (db, q) ->
      Relation.subset (Scheme_tf.certain_sub db q)
        (Certainty.cert_with_nulls_ra db q))

(* Theorem 4.6: Qᶠ(D) contains only certainly-false tuples *)
let prop_f_sound =
  QCheck2.Test.make ~count:40 ~name:"Thm 4.6: Qᶠ tuples are never answers"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(pair (gen_db ~max_size:2 ()) (gen_query ~allow_tests:false ()))
    (fun (db, q) ->
      let cf = Scheme_tf.certainly_false db q in
      let worlds = Certainty.canonical_worlds ~query_consts:(Algebra.consts q) db in
      List.for_all
        (fun (v, world) ->
          let answer = Eval.run world q in
          Relation.for_all
            (fun t -> not (Relation.mem (Valuation.apply_tuple v t) answer))
            cf)
        worlds)

(* on complete databases Qᵗ and Q⁺ coincide with Q *)
let prop_complete_db_no_loss =
  QCheck2.Test.make ~count:80
    ~name:"Thm 4.6/4.7: Qᵗ = Q⁺ = Q on complete databases"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(
      pair (gen_db ~null_rate:0.0 ~max_size:3 ()) (gen_query ~allow_tests:false ()))
    (fun (db, q) ->
      let reference = Eval.run db q in
      Relation.equal (Scheme_pm.certain_sub db q) reference
      && Relation.equal (Scheme_tf.certain_sub db q) reference)

(* the two schemes are incomparable in general, but both are sound; on
   our generator Q⁺ never misses an answer that Qᵗ surely finds for
   difference-free queries (they coincide there) *)
let prop_schemes_coincide_without_difference =
  QCheck2.Test.make ~count:60
    ~name:"Qᵗ = Q⁺ on difference-free queries"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(pair (gen_db ~max_size:3 ()) (gen_query ~positive:true ()))
    (fun (db, q) ->
      Relation.equal (Scheme_tf.certain_sub db q) (Scheme_pm.certain_sub db q))

let test_scheme_pm_unpaid_orders () =
  (* Figure 1 with the payment for o2 nulled: unpaid orders *)
  let schema =
    Schema.of_list [ ("orders", [ "oid" ]); ("payments", [ "poid" ]) ]
  in
  let db =
    Database.of_list schema
      [ ("orders", [ tup [ s "o1" ]; tup [ s "o2" ]; tup [ s "o3" ] ]);
        ("payments", [ tup [ s "o1" ]; tup [ nu 0 ] ]) ]
  in
  let q = Algebra.Diff (Rel "orders", Rel "payments") in
  (* no order is certainly unpaid: the null may be o2 or o3 *)
  check_rel "Q⁺ empty" (rel 1 []) (Scheme_pm.certain_sub db q);
  check_rel "cert⊥ empty" (rel 1 [])
    (Certainty.cert_with_nulls_ra db q);
  (* o2 and o3 are possible answers; o1 is paid in every world *)
  check_rel "Q? has o2 and o3"
    (rel 1 [ [ s "o2" ]; [ s "o3" ] ])
    (Scheme_pm.possible_sup db q)

(* ------------------------------------------------------------------ *)
(* Bag-semantics bounds (Theorem 4.8)                                  *)
(* ------------------------------------------------------------------ *)

let prop_bag_bounds =
  QCheck2.Test.make ~count:60
    ~name:"Thm 4.8: #(ā,Q⁺) ≤ □Q ≤ #(ā,Q?) under bags"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(pair (gen_db ~max_size:2 ()) (gen_query ~allow_tests:false ()))
    (fun (db, q) ->
      let lower = Bag_bounds.lower_bound db q in
      let upper = Bag_bounds.upper_bound db q in
      (* candidate tuples: everything in the upper bound's support plus
         everything naive evaluation returns *)
      let candidates =
        Relation.union (Bag_relation.support upper) (Naive.run db q)
      in
      Relation.for_all
        (fun t ->
          let box = Bag_bounds.box db q t in
          Bag_relation.multiplicity t lower <= box
          && box <= Bag_relation.multiplicity t upper)
        candidates)

let test_bag_box_diamond_example () =
  (* T = {1, 1-as-two-copies? } — multiplicities through difference:
     T has {1×1, ⊥×1}; Q = T − U with U = {1×1}.
     If ⊥ ↦ 1: T becomes {1×2}, minus {1×1} leaves multiplicity 1.
     Otherwise: {1×1, c×1} minus {1×1} leaves multiplicity 0 for 1. *)
  let db =
    Database.of_list test_schema
      [ ("T", [ tup [ i 1 ]; tup [ nu 0 ] ]); ("U", [ tup [ i 1 ] ]) ]
  in
  let q = Algebra.Diff (Rel "T", Rel "U") in
  Alcotest.(check int) "□ = 0" 0 (Bag_bounds.box db q (tup [ i 1 ]));
  Alcotest.(check int) "◇ = 1" 1 (Bag_bounds.diamond db q (tup [ i 1 ]));
  (* the null tuple: in the ⊥↦1 world, multiplicity of 1 is 1 > 0;
     in others v(⊥) is present once *)
  Alcotest.(check int) "□(⊥) = 1" 1 (Bag_bounds.box db q (tup [ nu 0 ]))

(* ------------------------------------------------------------------ *)
(* Query classes                                                       *)
(* ------------------------------------------------------------------ *)

let test_classes () =
  let open Algebra in
  let pos = Union (Rel "T", Project ([ 0 ], Rel "R")) in
  Alcotest.(check bool) "positive" true (Classes.is_positive pos);
  Alcotest.(check bool) "diff not positive" false
    (Classes.is_positive (Diff (Rel "T", Rel "U")));
  Alcotest.(check bool) "neq not positive" false
    (Classes.is_positive (Select (Condition.neq_col 0 1, Rel "R")));
  Alcotest.(check bool) "division in Pos∀G" true
    (Classes.is_pos_forall_g (Division (Rel "R", Rel "T")));
  Alcotest.(check bool) "division not positive" false
    (Classes.is_positive (Division (Rel "R", Rel "T")))

let prop_division_expansion_equiv =
  QCheck2.Test.make ~count:80 ~name:"expand_division preserves semantics"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(
      pair (gen_db ~max_size:3 ()) (gen_query ~allow_division:true ()))
    (fun (db, q) ->
      let expanded = Classes.expand_division test_schema q in
      Relation.equal (Eval.run db q) (Eval.run db expanded))

(* ------------------------------------------------------------------ *)
(* Suite                                                               *)
(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "certain"
    [ ( "exact",
        [ Alcotest.test_case "cert⊥ keeps nulls" `Quick
            test_cert_with_nulls_keeps_null;
          Alcotest.test_case "difference example" `Quick
            test_cert_difference_empty;
          Alcotest.test_case "tautology disjunction" `Quick
            test_cert_tautology_disjunction;
          Alcotest.test_case "boolean certainty" `Quick test_certain_boolean ] );
      ( "object",
        [ Alcotest.test_case "certain-answer object" `Quick
            test_certain_object_example ] );
      qsuite "object-props"
        [ prop_certain_object_lower_bound; prop_certain_object_equivalent ];
      qsuite "exact-props"
        [ prop_cert_intersection_consistent; prop_cert_subset_naive;
          prop_cert_brute_force ];
      ( "naive",
        [ Alcotest.test_case "division example" `Quick test_division_example ] );
      qsuite "naive-props"
        [ prop_naive_exact_for_ucq; prop_naive_exact_for_division;
          prop_naive_nullfree_is_cert_cap ];
      ( "schemes",
        [ Alcotest.test_case "unpaid orders" `Quick test_scheme_pm_unpaid_orders
        ] );
      qsuite "scheme-props"
        [ prop_plus_sound; prop_sandwich; prop_t_sound; prop_f_sound;
          prop_complete_db_no_loss; prop_schemes_coincide_without_difference ];
      ( "bags",
        [ Alcotest.test_case "box diamond example" `Quick
            test_bag_box_diamond_example ] );
      qsuite "bag-props" [ prop_bag_bounds ];
      ( "classes", [ Alcotest.test_case "recognisers" `Quick test_classes ] );
      qsuite "class-props" [ prop_division_expansion_equiv ] ]
