(* Tests for conditional tables: condition grounding and simplification,
   exactness of symbolic conditional evaluation (c-tables are a strong
   representation system), and the four approximation strategies of
   [36] with their correctness guarantees (Theorem 4.9). *)

open Incdb_relational
open Incdb_ctables
open Helpers

let c = Value.Const (Value.Int 7)

(* ------------------------------------------------------------------ *)
(* Conditions                                                          *)
(* ------------------------------------------------------------------ *)

let kleene_tc : Incdb_logic.Kleene.t Alcotest.testable =
  Alcotest.testable Incdb_logic.Kleene.pp Incdb_logic.Kleene.equal

let test_ground () =
  let open Cond in
  let open Incdb_logic.Kleene in
  Alcotest.check kleene_tc "same null" T (ground (Eq (nu 0, nu 0)));
  Alcotest.check kleene_tc "distinct nulls" U (ground (Eq (nu 0, nu 1)));
  Alcotest.check kleene_tc "null vs const" U (ground (Eq (nu 0, c)));
  Alcotest.check kleene_tc "consts" F (ground (Eq (i 1, i 2)));
  Alcotest.check kleene_tc "neq same null" F (ground (Neq (nu 0, nu 0)));
  Alcotest.check kleene_tc "and with f" F
    (ground (And (Eq (nu 0, c), Eq (i 1, i 2))));
  Alcotest.check kleene_tc "or with t" T
    (ground (Or (Eq (nu 0, c), Eq (i 1, i 1))))

let test_simplify_tautology () =
  let open Cond in
  (* ⊥ = 7 ∨ ⊥ ≠ 7 is a tautology even though neither atom grounds *)
  let taut = Or (Eq (nu 0, c), Neq (nu 0, c)) in
  Alcotest.(check bool) "tautology detected" true (simplify taut = True);
  let contradiction = And (Eq (nu 0, c), Neq (nu 0, c)) in
  Alcotest.(check bool) "contradiction detected" true
    (simplify contradiction = False);
  (* double negation and De Morgan normalisation (operands are oriented
     canonically, constants before nulls) *)
  let nn = Not (Not (Eq (nu 0, c))) in
  Alcotest.(check bool) "¬¬ removed" true
    (simplify nn = simplify (Eq (nu 0, c)))

let test_forced_equalities () =
  let open Cond in
  (* the paper's example: ⊥1 = c ∧ ⊥1 = ⊥2 forces ⊥2 ↦ c *)
  let cond = And (Eq (nu 1, c), Eq (nu 1, nu 2)) in
  let subst = forced_equalities cond in
  let t = substitute_tuple subst (tup [ nu 2 ]) in
  Alcotest.check tuple_tc "⊥2 becomes c" (tup [ Value.Const (Value.Int 7) ]) t;
  (* equalities under ∨ or ¬ are not forced *)
  let weak = Or (Eq (nu 1, c), Eq (nu 2, c)) in
  Alcotest.(check bool) "disjunctive equalities not forced" true
    (forced_equalities weak = [])

(* simplify preserves the two-valued truth under every valuation *)
let gen_cond : Cond.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let value = gen_value ~null_rate:0.5 in
  let atom =
    oneof
      [ map2 (fun x y -> Cond.Eq (x, y)) value value;
        map2 (fun x y -> Cond.Neq (x, y)) value value ]
  in
  sized_size (int_range 0 3)
    (fix (fun self n ->
         if n = 0 then atom
         else
           oneof
             [ atom;
               map2 (fun a b -> Cond.And (a, b)) (self (n - 1)) (self (n - 1));
               map2 (fun a b -> Cond.Or (a, b)) (self (n - 1)) (self (n - 1));
               map (fun a -> Cond.Not a) (self (n - 1)) ]))

let prop_simplify_sound =
  QCheck2.Test.make ~count:300 ~name:"simplify preserves truth"
    gen_cond
    (fun cond ->
      let nulls = Cond.nulls cond in
      let range = [ Value.Int 0; Value.Int 1; Value.Int 7 ] in
      let simplified = Cond.simplify cond in
      List.for_all
        (fun v -> Cond.eval v cond = Cond.eval v simplified)
        (Valuation.enumerate ~nulls ~range))

(* grounding is sound: a t/f verdict holds under every valuation *)
let prop_ground_sound =
  QCheck2.Test.make ~count:300 ~name:"grounding is sound"
    gen_cond
    (fun cond ->
      let nulls = Cond.nulls cond in
      let range = [ Value.Int 0; Value.Int 1; Value.Int 7; Value.Gen 5 ] in
      let vals = Valuation.enumerate ~nulls ~range in
      match Cond.ground cond with
      | Incdb_logic.Kleene.T -> List.for_all (fun v -> Cond.eval v cond) vals
      | Incdb_logic.Kleene.F ->
        List.for_all (fun v -> not (Cond.eval v cond)) vals
      | Incdb_logic.Kleene.U -> true)

(* ------------------------------------------------------------------ *)
(* Symbolic conditional evaluation is exact                            *)
(* ------------------------------------------------------------------ *)

let prop_symbolic_exact =
  QCheck2.Test.make ~count:60
    ~name:"c-tables are a strong representation system"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(pair (gen_db ~max_size:3 ()) (gen_query ~allow_tests:false ()))
    (fun (db, q) ->
      let ct = Incdb_ctables.Ceval.eval_symbolic db q in
      let worlds =
        Incdb_certain.Certainty.canonical_worlds
          ~query_consts:(Incdb_relational.Algebra.consts q) db
      in
      List.for_all
        (fun (v, world) ->
          Relation.equal
            (Ctable.answer_in_world v ct)
            (Eval.run world q))
        worlds)

(* ------------------------------------------------------------------ *)
(* The four strategies                                                 *)
(* ------------------------------------------------------------------ *)

let strategies = Ceval.all_strategies

(* Theorem 4.9: every strategy has correctness guarantees *)
let prop_strategies_sound =
  QCheck2.Test.make ~count:60
    ~name:"Thm 4.9: Eval⋆ₜ ⊆ cert⊥ for all strategies"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(pair (gen_db ~max_size:2 ()) (gen_query ~allow_tests:false ()))
    (fun (db, q) ->
      List.for_all
        (fun strategy ->
          let certain = Ceval.certain strategy db q in
          (* a certain c-tuple may have been rewritten by equality
             propagation, so check the defining property directly:
             v(t) ∈ Q(v(D)) in every canonical world *)
          let worlds =
            Incdb_certain.Certainty.canonical_worlds
              ~query_consts:(Incdb_relational.Algebra.consts q) db
          in
          Relation.for_all
            (fun t ->
              List.for_all
                (fun (v, world) ->
                  Relation.mem (Valuation.apply_tuple v t) (Eval.run world q))
                worlds)
            certain)
        strategies)

(* possible answers over-approximate: every world answer is the image
   of some possible c-tuple *)
let prop_strategies_possible_complete =
  QCheck2.Test.make ~count:60
    ~name:"Eval⋆ₚ over-approximates in every world"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(pair (gen_db ~max_size:2 ()) (gen_query ~allow_tests:false ()))
    (fun (db, q) ->
      List.for_all
        (fun strategy ->
          let possible = Ceval.possible strategy db q in
          let worlds =
            Incdb_certain.Certainty.canonical_worlds
              ~query_consts:(Incdb_relational.Algebra.consts q) db
          in
          List.for_all
            (fun (v, world) ->
              Relation.subset (Eval.run world q)
                (Valuation.apply_relation v possible))
            worlds)
        strategies)

(* Theorem 4.9: the eager strategy coincides with the (Q⁺, Q?) scheme.
   The theorem is stated for the paper's condition grammar (=, ≠): on
   our order-comparison extension the eager strategy is strictly
   smarter — it can decide ⊥ ≤ ⊥ (certainly true) and ⊥ < ⊥ (certainly
   false) where the syntactic star-guards cannot — so the equality is
   tested on order-free conditions only. *)
let rec condition_order_free = function
  | Condition.True | Condition.False | Condition.Is_const _
  | Condition.Is_null _ | Condition.Eq _ | Condition.Neq _ ->
    true
  | Condition.Lt _ | Condition.Le _ -> false
  | Condition.And (a, b) | Condition.Or (a, b) ->
    condition_order_free a && condition_order_free b

let rec query_order_free = function
  | Algebra.Rel _ | Algebra.Lit _ | Algebra.Dom _ -> true
  | Algebra.Select (c, q) -> condition_order_free c && query_order_free q
  | Algebra.Project (_, q) -> query_order_free q
  | Algebra.Product (a, b) | Algebra.Union (a, b) | Algebra.Inter (a, b)
  | Algebra.Diff (a, b) | Algebra.Division (a, b)
  | Algebra.Anti_unify_join (a, b) ->
    query_order_free a && query_order_free b

let prop_eager_is_scheme_pm =
  QCheck2.Test.make ~count:80
    ~name:"Thm 4.9: Evalᵉₜ = Q⁺ and Evalᵉₚ = Q? (order-free grammar)"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(pair (gen_db ~max_size:3 ()) (gen_query ~allow_tests:false ()))
    (fun (db, q) ->
      if not (query_order_free q) then true
      else
      Relation.equal
        (Ceval.certain Ceval.Eager db q)
        (Incdb_certain.Scheme_pm.certain_sub db q)
      && Relation.equal
           (Ceval.possible Ceval.Eager db q)
           (Incdb_certain.Scheme_pm.possible_sup db q))

(* with order atoms the eager strategy refines (Q⁺, Q?): its certain
   answers contain Q⁺'s and its possible answers are within Q?'s *)
let prop_eager_refines_scheme_with_order =
  QCheck2.Test.make ~count:60
    ~name:"order atoms: Q⁺ ⊆ Evalᵉₜ and Evalᵉₚ ⊆ Q?"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(pair (gen_db ~max_size:2 ()) (gen_query ~allow_tests:false ()))
    (fun (db, q) ->
      Relation.subset
        (Incdb_certain.Scheme_pm.certain_sub db q)
        (Ceval.certain Ceval.Eager db q)
      && Relation.subset
           (Ceval.possible Ceval.Eager db q)
           (Incdb_certain.Scheme_pm.possible_sup db q))

(* the aware strategy subsumes the eager strategy's certain answers *)
let prop_aware_subsumes_eager =
  QCheck2.Test.make ~count:60 ~name:"Evalᵃₜ ⊇ Evalᵉₜ"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(pair (gen_db ~max_size:2 ()) (gen_query ~allow_tests:false ()))
    (fun (db, q) ->
      Relation.subset
        (Ceval.certain Ceval.Eager db q)
        (Ceval.certain Ceval.Aware db q))

(* distinguishing example 1: semi-eager propagates equalities where
   eager does not — the paper's ⟨⊥2, ⊥1=c ∧ ⊥1=⊥2⟩ vs ⟨c, u⟩ *)
let test_semi_eager_propagates () =
  let db =
    Database.of_list test_schema
      [ ("T", [ tup [ nu 2 ] ]); ("U", [ tup [ nu 1 ] ]) ]
  in
  (* (T ∩ U) ∩ {7}: conditions ⊥2 = ⊥1 and ⊥2 = 7 on tuple ⟨⊥2⟩ *)
  let q =
    Algebra.Inter
      (Algebra.Inter (Algebra.Rel "T", Algebra.Rel "U"),
       Algebra.Lit (1, [ tup [ i 7 ] ]))
  in
  let eager = Ceval.possible Ceval.Eager db q in
  let semi = Ceval.possible Ceval.Semi_eager db q in
  check_rel "eager keeps the null" (rel 1 [ [ nu 2 ] ]) eager;
  check_rel "semi-eager reports the constant" (rel 1 [ [ i 7 ] ]) semi

(* distinguishing example 2: only the aware strategy recognises the
   tautology A = 2 ∨ A ≠ 2 (the intro's third query) *)
let test_aware_recognises_tautology () =
  let db = Database.of_list test_schema [ ("T", [ tup [ nu 0 ] ]) ] in
  let q =
    Algebra.Select
      ( Condition.Or
          (Condition.eq_const 0 (Value.Int 2),
           Condition.neq_const 0 (Value.Int 2)),
        Algebra.Rel "T" )
  in
  check_rel "eager finds nothing certain" (rel 1 [])
    (Ceval.certain Ceval.Eager db q);
  check_rel "lazy finds nothing certain" (rel 1 [])
    (Ceval.certain Ceval.Lazy db q);
  check_rel "aware finds the certain answer" (rel 1 [ [ nu 0 ] ])
    (Ceval.certain Ceval.Aware db q);
  (* and the exact certain answers agree with aware here *)
  check_rel "matches cert⊥" (Incdb_certain.Certainty.cert_with_nulls_ra db q)
    (Ceval.certain Ceval.Aware db q)


(* ------------------------------------------------------------------ *)
(* Conditional databases as inputs                                     *)
(* ------------------------------------------------------------------ *)

let test_cdb_world () =
  let open Incdb_ctables in
  (* a genuinely conditional fact: T(1) holds only when ⊥0 = 7 *)
  let cdb =
    Cdb.of_list test_schema
      [ ("T",
         [ { Ctable.tuple = tup [ i 1 ]; cond = Cond.Eq (nu 0, c) };
           { Ctable.tuple = tup [ nu 0 ]; cond = Cond.True } ]) ]
  in
  let yes = Valuation.of_list [ (0, Value.Int 7) ] in
  let no = Valuation.of_list [ (0, Value.Int 9) ] in
  check_rel "world where the condition holds"
    (rel 1 [ [ i 1 ]; [ i 7 ] ])
    (Database.relation (Cdb.world yes cdb) "T");
  check_rel "world where it fails" (rel 1 [ [ i 9 ] ])
    (Database.relation (Cdb.world no cdb) "T")

let test_cdb_eval_strategies () =
  let open Incdb_ctables in
  let cdb =
    Cdb.of_list test_schema
      [ ("T",
         [ { Ctable.tuple = tup [ i 1 ]; cond = Cond.True };
           { Ctable.tuple = tup [ i 2 ]; cond = Cond.Eq (nu 0, c) } ]) ]
  in
  let q = Algebra.Rel "T" in
  let eager = Ctable.certain (Ceval.eval_cdb Ceval.Eager cdb q) in
  check_rel "only the unconditional fact is certain" (rel 1 [ [ i 1 ] ]) eager;
  let possible = Ctable.possible (Ceval.eval_cdb Ceval.Eager cdb q) in
  check_rel "the conditional fact is possible" (rel 1 [ [ i 1 ]; [ i 2 ] ])
    possible

(* symbolic evaluation on conditional databases is exact: the result
   c-table denotes Q of the instantiated database in every world *)
let prop_cdb_symbolic_exact =
  QCheck2.Test.make ~count:40
    ~name:"symbolic eval on conditional databases is exact"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(pair (gen_db ~max_size:2 ()) (gen_query ~allow_tests:false ()))
    (fun (db, q) ->
      let open Incdb_ctables in
      (* make it genuinely conditional: attach ⊥9 = 7 to half the facts *)
      let flag = ref false in
      let cdb =
        Cdb.of_list test_schema
          (List.map
             (fun (d : Schema.relation_decl) ->
               ( d.name,
                 List.map
                   (fun t ->
                     flag := not !flag;
                     { Ctable.tuple = t;
                       cond = (if !flag then Cond.Eq (nu 9, c) else Cond.True)
                     })
                   (Relation.to_list (Database.relation db d.name)) ))
             (Schema.relations test_schema))
      in
      let ct = Ceval.eval_symbolic_cdb cdb q in
      let nulls = Cdb.nulls cdb in
      let consts =
        List.sort_uniq Value.compare_const
          (Cdb.consts cdb @ Algebra.consts q
          @ [ Value.Int 7; Value.Gen 70; Value.Gen 71 ])
      in
      (* a small concrete sample of worlds *)
      let vals = Valuation.enumerate_canonical ~nulls ~consts in
      List.for_all
        (fun v ->
          Relation.equal
            (Ctable.answer_in_world v ct)
            (Eval.run (Cdb.world v cdb) q))
        vals)

(* ------------------------------------------------------------------ *)
(* Suite                                                               *)
(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "ctables"
    [ ( "cond",
        [ Alcotest.test_case "grounding" `Quick test_ground;
          Alcotest.test_case "simplify tautologies" `Quick
            test_simplify_tautology;
          Alcotest.test_case "forced equalities" `Quick test_forced_equalities
        ] );
      qsuite "cond-props" [ prop_simplify_sound; prop_ground_sound ];
      qsuite "symbolic" [ prop_symbolic_exact ];
      ( "strategies",
        [ Alcotest.test_case "semi-eager propagation" `Quick
            test_semi_eager_propagates;
          Alcotest.test_case "aware tautology" `Quick
            test_aware_recognises_tautology ] );
      ( "conditional-db",
        [ Alcotest.test_case "worlds" `Quick test_cdb_world;
          Alcotest.test_case "strategies on cdb" `Quick
            test_cdb_eval_strategies ] );
      qsuite "cdb-props" [ prop_cdb_symbolic_exact ];
      qsuite "strategy-props"
        [ prop_strategies_sound; prop_strategies_possible_complete;
          prop_eager_is_scheme_pm; prop_eager_refines_scheme_with_order;
          prop_aware_subsumes_eager ] ]
