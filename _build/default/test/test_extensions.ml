(* Tests for the extension modules: Codd nulls and the codd
   transformation (Section 6), the query optimizer, CSV import/export,
   the FO ↔ algebra bridge, open-world reasoning (Theorems 4.3/4.4
   under OWA), and the Pos∀G recogniser on formulas. *)

open Incdb_relational
open Helpers

(* ------------------------------------------------------------------ *)
(* Codd nulls                                                          *)
(* ------------------------------------------------------------------ *)

let test_coddify () =
  let db =
    Database.of_list test_schema
      [ ("R", [ tup [ nu 0; nu 0 ]; tup [ i 1; nu 1 ] ]) ]
  in
  Alcotest.(check bool) "not codd before" false (Codd.is_codd db);
  let codded = Codd.coddify db in
  Alcotest.(check bool) "codd after" true (Codd.is_codd codded);
  Alcotest.(check int) "3 null occurrences => 3 labels" 3
    (List.length (Database.nulls codded));
  Alcotest.(check int) "same size" (Database.size db) (Database.size codded)

let test_equal_up_to_renaming () =
  let r1 = rel 2 [ [ nu 0; nu 1 ]; [ nu 0; i 3 ] ] in
  let r2 = rel 2 [ [ nu 7; nu 5 ]; [ nu 7; i 3 ] ] in
  Alcotest.(check bool) "isomorphic" true (Codd.equal_up_to_renaming r1 r2);
  (* breaking the sharing pattern breaks the isomorphism *)
  let r3 = rel 2 [ [ nu 7; nu 5 ]; [ nu 8; i 3 ] ] in
  Alcotest.(check bool) "pattern differs" false
    (Codd.equal_up_to_renaming r1 r3);
  (* constants are rigid *)
  let r4 = rel 2 [ [ nu 7; nu 5 ]; [ nu 7; i 4 ] ] in
  Alcotest.(check bool) "constants rigid" false
    (Codd.equal_up_to_renaming r1 r4)

let test_codd_invariance () =
  let db =
    Database.of_list test_schema [ ("R", [ tup [ nu 0; nu 0 ] ]) ]
  in
  (* a projection only copies the nulls: invariant *)
  Alcotest.(check bool) "projection invariant" true
    (Codd.invariant_on db (Algebra.Project ([ 0 ], Algebra.Rel "R")));
  (* σ(A = B) distinguishes repeated marks from Codd nulls *)
  Alcotest.(check bool) "self-join selection not invariant" false
    (Codd.invariant_on db (Algebra.Select (Condition.eq_col 0 1, Algebra.Rel "R")))

let prop_coddify_is_codd =
  QCheck2.Test.make ~count:100 ~name:"coddify always yields Codd databases"
    ~print:db_print (gen_db ())
    (fun db -> Codd.is_codd (Codd.coddify db))

(* on an already-Codd database, queries that never duplicate a null
   occurrence — no Cartesian product, no repeated projection indices —
   are Codd-invariant: coddifying answers is a mere renaming.  Products
   of overlapping subqueries (T × T) and duplicating projections
   (π[0,0]) genuinely break invariance, which is the paper's point
   about the class not being syntactic. *)
let rec no_null_duplication = function
  | Algebra.Rel _ | Algebra.Lit _ | Algebra.Dom _ -> true
  | Algebra.Select (_, q) -> no_null_duplication q
  | Algebra.Project (idxs, q) ->
    List.length idxs = List.length (List.sort_uniq Int.compare idxs)
    && no_null_duplication q
  | Algebra.Product _ -> false
  | Algebra.Union (a, b) | Algebra.Inter (a, b) | Algebra.Diff (a, b)
  | Algebra.Division (a, b) | Algebra.Anti_unify_join (a, b) ->
    no_null_duplication a && no_null_duplication b

let prop_codd_invariant_without_duplication =
  QCheck2.Test.make ~count:120
    ~name:"Codd databases + duplication-free queries are invariant"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(pair (gen_db ()) (gen_query ()))
    (fun (db, q) ->
      if not (no_null_duplication q) then true
      else Codd.invariant_on (Codd.coddify db) q)

(* ------------------------------------------------------------------ *)
(* Optimizer                                                           *)
(* ------------------------------------------------------------------ *)

let test_condition_simplify () =
  let open Condition in
  let c = And (True, Or (False, eq_col 0 0)) in
  Alcotest.(check bool) "folds to true" true
    (Optimize.simplify_condition c = True);
  let taut = Or (eq_const 0 (Value.Int 1), neq_const 0 (Value.Int 1)) in
  Alcotest.(check bool) "complementary pair" true
    (Optimize.simplify_condition taut = True);
  let contra = And (Is_null 0, Is_const 0) in
  Alcotest.(check bool) "null/const clash" true
    (Optimize.simplify_condition contra = False);
  Alcotest.(check bool) "lit folding" true
    (Optimize.simplify_condition (Eq (Lit (Value.Int 2), Lit (Value.Int 3)))
     = False)

let test_optimize_structure () =
  let open Algebra in
  (* σ-cascade and projection composition collapse *)
  let q =
    Project
      ( [ 0 ],
        Project
          ( [ 1; 0 ],
            Select
              (Condition.True, Select (Condition.eq_col 0 1, Rel "R")) ) )
  in
  let optimized = Optimize.optimize test_schema q in
  Alcotest.(check bool)
    (Printf.sprintf "smaller: %s" (Algebra.to_string optimized))
    true
    (Algebra.size optimized < Algebra.size q);
  (* empty literals absorb *)
  let q2 = Union (Lit (1, []), Diff (Rel "T", Lit (1, []))) in
  Alcotest.(check bool) "empties eliminated" true
    (Optimize.optimize test_schema q2 = Rel "T")

(* the golden property: optimization never changes the answers, under
   set semantics with nulls present *)
let prop_optimize_preserves_set_semantics =
  QCheck2.Test.make ~count:400 ~name:"optimize preserves set semantics"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(
      pair (gen_db ()) (gen_query ~allow_division:true ()))
    (fun (db, q) ->
      let optimized = Optimize.optimize test_schema q in
      Relation.equal (Eval.run db q) (Eval.run db optimized))

let prop_optimize_preserves_bag_semantics =
  QCheck2.Test.make ~count:200 ~name:"optimize preserves bag semantics"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(pair (gen_db ()) (gen_query ()))
    (fun (db, q) ->
      let optimized = Optimize.optimize test_schema q in
      Bag_relation.equal (Bag_eval.run db q) (Bag_eval.run db optimized))

(* optimizing the Q+ translation preserves its answers (hence its
   soundness) *)
let prop_optimize_plus_translation =
  QCheck2.Test.make ~count:100 ~name:"optimized Q+ = Q+"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(pair (gen_db ()) (gen_query ~allow_tests:false ()))
    (fun (db, q) ->
      let plus = Incdb_certain.Scheme_pm.translate_plus test_schema q in
      let optimized = Optimize.optimize test_schema plus in
      Relation.equal (Eval.run db plus) (Eval.run db optimized))

(* ------------------------------------------------------------------ *)
(* CSV                                                                 *)
(* ------------------------------------------------------------------ *)

let test_csv_values () =
  let next = ref 0 in
  let p = Csv_io.parse_value ~next_null:next in
  Alcotest.(check bool) "int" true (Value.equal (p "42") (i 42));
  Alcotest.(check bool) "negative int" true (Value.equal (p "-7") (i (-7)));
  Alcotest.(check bool) "string" true (Value.equal (p "hello") (s "hello"));
  Alcotest.(check bool) "quoted" true (Value.equal (p "\"a,b\"") (s "a,b"));
  Alcotest.(check bool) "marked null" true (Value.equal (p "_3") (nu 3));
  let v1 = p "NULL" and v2 = p "" in
  Alcotest.(check bool) "fresh codd nulls distinct" false (Value.equal v1 v2);
  Alcotest.(check bool) "fresh null is null" true (Value.is_null v1)

let test_csv_value_roundtrip () =
  let values =
    [ i 0; i (-12); s "plain"; s "with,comma"; s "with\"quote"; s "33";
      s "NULL"; s ""; nu 5 ]
  in
  let next = ref 100 in
  List.iter
    (fun v ->
      let back = Csv_io.parse_value ~next_null:next (Csv_io.format_value v) in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %s" (Value.to_string v))
        true (Value.equal v back))
    values

let test_csv_relation_parse () =
  let next = ref 0 in
  let attrs, r =
    Csv_io.relation_of_string ~next_null:next
      "# a comment\noid,price\no1,30\no2,NULL\no3,_0\n"
  in
  Alcotest.(check (list string)) "attrs" [ "oid"; "price" ] attrs;
  Alcotest.(check int) "three rows" 3 (Relation.cardinal r);
  (* _0 was claimed by the file, the Codd NULL got a fresh label *)
  Alcotest.(check int) "two nulls" 2 (List.length (Relation.nulls r));
  match Csv_io.relation_of_string ~next_null:next "a,b\n1\n" with
  | _ -> Alcotest.fail "ragged row accepted"
  | exception Csv_io.Csv_error _ -> ()

let test_csv_dir_roundtrip () =
  let dir = Filename.temp_file "incdb" "" in
  Sys.remove dir;
  let db =
    Database.of_list test_schema
      [ ("R", [ tup [ i 1; nu 0 ]; tup [ s "x,y"; nu 0 ] ]);
        ("T", [ tup [ i 9 ] ]) ]
  in
  Csv_io.save_dir dir db;
  let loaded = Csv_io.load_dir dir in
  Alcotest.(check int) "same size" (Database.size db) (Database.size loaded);
  (* relations R and T round-trip exactly (same labels via _k syntax) *)
  Alcotest.check relation_tc "R" (Database.relation db "R")
    (Database.relation loaded "R");
  Alcotest.check relation_tc "T" (Database.relation db "T")
    (Database.relation loaded "T")

let prop_csv_relation_roundtrip =
  QCheck2.Test.make ~count:100 ~name:"relation CSV roundtrip"
    (gen_relation ~null_rate:0.3 ~max_size:6 2)
    (fun r ->
      let text = Csv_io.relation_to_string [ "a"; "b" ] r in
      let next = ref 1_000 in
      let _, back = Csv_io.relation_of_string ~next_null:next text in
      Relation.equal r back)

(* ------------------------------------------------------------------ *)
(* FO ↔ algebra bridge                                                 *)
(* ------------------------------------------------------------------ *)

let fo_answers db phi =
  Incdb_logic.Semantics.certain_true Incdb_logic.Semantics.all_bool db phi

let prop_fo_of_algebra =
  QCheck2.Test.make ~count:200 ~name:"fo_of_algebra agrees with Eval"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(
      pair (gen_db ~max_size:3 ()) (gen_query ~allow_division:true ()))
    (fun (db, q) ->
      let phi = Incdb_logic.Bridge.fo_of_algebra test_schema q in
      Relation.equal (Eval.run db q) (fo_answers db phi))

let prop_algebra_of_fo =
  QCheck2.Test.make ~count:200 ~name:"algebra_of_fo agrees with FO eval"
    ~print:(fun (db, phi) -> db_print db ^ "\n" ^ fo_print phi)
    QCheck2.Gen.(pair (gen_db ~max_size:3 ()) (gen_fo ~allow_assert:true ()))
    (fun (db, phi) ->
      let q = Incdb_logic.Bridge.algebra_of_fo test_schema phi in
      Relation.equal (fo_answers db phi) (Eval.run db q))

(* the two translations compose: algebra → FO → algebra preserves
   semantics *)
let prop_bridge_roundtrip =
  QCheck2.Test.make ~count:60 ~name:"algebra → FO → algebra roundtrip"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(pair (gen_db ~max_size:2 ()) (gen_query ()))
    (fun (db, q) ->
      let phi = Incdb_logic.Bridge.fo_of_algebra test_schema q in
      let q' = Incdb_logic.Bridge.algebra_of_fo test_schema phi in
      Relation.equal (Eval.run db q) (Eval.run db q'))

let test_bridge_examples () =
  (* R ÷ T as FO: employees-on-all-projects flavour *)
  let q = Algebra.Division (Algebra.Rel "R", Algebra.Rel "T") in
  let db =
    Database.of_list test_schema
      [ ("R", [ tup [ i 1; i 7 ]; tup [ i 1; i 8 ]; tup [ i 2; i 7 ] ]);
        ("T", [ tup [ i 7 ]; tup [ i 8 ] ]) ]
  in
  let phi = Incdb_logic.Bridge.fo_of_algebra test_schema q in
  check_rel "division via FO" (rel 1 [ [ i 1 ] ]) (fo_answers db phi)

(* ------------------------------------------------------------------ *)
(* OWA                                                                 *)
(* ------------------------------------------------------------------ *)

let test_possible_worlds () =
  let d = Database.of_list test_schema [ ("R", [ tup [ i 1; nu 0 ] ]) ] in
  let w1 = Database.of_list test_schema [ ("R", [ tup [ i 1; i 2 ] ]) ] in
  let w2 =
    Database.of_list test_schema
      [ ("R", [ tup [ i 1; i 2 ]; tup [ i 5; i 5 ] ]) ]
  in
  let check sem ~of_ cand expected msg =
    Alcotest.(check bool) msg expected
      (Incdb_certain.Owa.is_possible_world ~semantics:sem ~of_ cand)
  in
  check Incdb_certain.Owa.Cwa ~of_:d w1 true "cwa world";
  check Incdb_certain.Owa.Cwa ~of_:d w2 false "extra fact not cwa";
  check Incdb_certain.Owa.Owa ~of_:d w2 true "extra fact is owa";
  (* incomplete candidates are never worlds *)
  check Incdb_certain.Owa.Owa ~of_:d d false "incomplete not a world"

let test_owa_certain_ucq () =
  let db = Database.of_list test_schema [ ("R", [ tup [ i 1; nu 0 ] ]) ] in
  let q = Algebra.Project ([ 0 ], Algebra.Rel "R") in
  check_rel "owa certain for ucq" (rel 1 [ [ i 1 ] ])
    (Incdb_certain.Owa.certain_answers_ucq db q);
  let neg = Algebra.Diff (Algebra.Rel "T", Algebra.Rel "U") in
  match Incdb_certain.Owa.certain_answers_ucq db neg with
  | _ -> Alcotest.fail "difference accepted"
  | exception Incdb_certain.Owa.Not_supported _ -> ()

(* homomorphism preservation (the engine behind Theorem 4.3): Boolean
   UCQs satisfied on D stay satisfied on any homomorphic image *)
let prop_ucq_preserved_under_homs =
  QCheck2.Test.make ~count:80
    ~name:"Boolean UCQs preserved under arbitrary homomorphisms"
    ~print:(fun ((d1, d2), q) ->
      db_print d1 ^ "\n" ^ db_print d2 ^ "\n" ^ query_print q)
    QCheck2.Gen.(
      pair
        (pair (gen_db ~max_size:2 ()) (gen_db ~null_rate:0.0 ~max_size:3 ()))
        (gen_query ~positive:true ()))
    (fun ((d1, d2), q) ->
      (* a Boolean version of q: does it return anything? *)
      let boolean = Algebra.Project ([], q) in
      Incdb_certain.Owa.preserved_on ~kind:Homomorphism.Arbitrary boolean
        ~from_:d1 ~to_:d2)


(* Proposition 3.4: more informative inputs give more informative
   answers.  Under OWA, D1 ⪯ D2 iff a constant-fixing homomorphism
   D1 → D2 exists; for monotone (UCQ) queries the same homomorphism
   maps the answers of D1 into the answers of D2. *)
let prop_informativeness_monotone =
  QCheck2.Test.make ~count:60
    ~name:"Prop 3.4: h : D1 → D2 maps UCQ answers of D1 into D2's"
    ~print:(fun ((d1, d2), q) ->
      db_print d1 ^ "\n" ^ db_print d2 ^ "\n" ^ query_print q)
    QCheck2.Gen.(
      pair
        (pair (gen_db ~max_size:2 ()) (gen_db ~max_size:3 ()))
        (gen_query ~positive:true ()))
    (fun ((d1, d2), q) ->
      match Homomorphism.find ~from_:d1 ~to_:d2 () with
      | None -> true
      | Some h ->
        let image_of_answer t =
          Array.map
            (fun v ->
              match v with
              | Value.Null n ->
                (match List.assoc_opt n h with Some w -> w | None -> v)
              | Value.Const _ -> v)
            t
        in
        let a1 = Incdb_certain.Naive.run d1 q in
        let a2 = Incdb_certain.Naive.run d2 q in
        Relation.for_all (fun t -> Relation.mem (image_of_answer t) a2) a1)

(* ------------------------------------------------------------------ *)
(* Pos∀G recogniser on formulas                                        *)
(* ------------------------------------------------------------------ *)

let test_pos_forall_g_formulas () =
  let open Incdb_logic.Fo in
  let atom_r x y = Atom ("R", [ Var x; Var y ]) in
  let atom_t x = Atom ("T", [ Var x ]) in
  (* ∀x (T(x) → ∃y R(x,y)) — guarded universal: in Pos∀G *)
  let guarded =
    Forall ("x", Or (Not (atom_t "x"), Exists ("y", atom_r "x" "y")))
  in
  Alcotest.(check bool) "guarded in Pos∀G" true
    (is_pos_forall_guarded guarded);
  Alcotest.(check bool) "guarded not positive (has ¬)" false
    (is_positive guarded);
  (* plain positive formula with ∀ *)
  let positive = Forall ("x", Exists ("y", atom_r "x" "y")) in
  Alcotest.(check bool) "plain ∀ positive" true (is_positive positive);
  Alcotest.(check bool) "plain ∀ in Pos∀G" true
    (is_pos_forall_guarded positive);
  (* unguarded negation is not in Pos∀G *)
  let bad = Forall ("x", Or (Not (Exists ("y", atom_r "x" "y")), atom_t "x")) in
  Alcotest.(check bool) "negated subformula rejected" false
    (is_pos_forall_guarded bad);
  (* a guard with repeated variables is not a valid guard *)
  let bad_guard = Forall ("x", Or (Not (atom_r "x" "x"), atom_t "x")) in
  Alcotest.(check bool) "repeated guard variables rejected" false
    (is_pos_forall_guarded bad_guard)

(* ------------------------------------------------------------------ *)
(* Suite                                                               *)
(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "extensions"
    [ ( "codd",
        [ Alcotest.test_case "coddify" `Quick test_coddify;
          Alcotest.test_case "renaming equality" `Quick
            test_equal_up_to_renaming;
          Alcotest.test_case "invariance examples" `Quick test_codd_invariance
        ] );
      qsuite "codd-props" [ prop_coddify_is_codd; prop_codd_invariant_without_duplication ];
      ( "optimize",
        [ Alcotest.test_case "condition simplify" `Quick
            test_condition_simplify;
          Alcotest.test_case "structural rewrites" `Quick
            test_optimize_structure ] );
      qsuite "optimize-props"
        [ prop_optimize_preserves_set_semantics;
          prop_optimize_preserves_bag_semantics;
          prop_optimize_plus_translation ];
      ( "csv",
        [ Alcotest.test_case "value parsing" `Quick test_csv_values;
          Alcotest.test_case "value roundtrip" `Quick test_csv_value_roundtrip;
          Alcotest.test_case "relation parsing" `Quick test_csv_relation_parse;
          Alcotest.test_case "directory roundtrip" `Quick test_csv_dir_roundtrip
        ] );
      qsuite "csv-props" [ prop_csv_relation_roundtrip ];
      ( "bridge",
        [ Alcotest.test_case "examples" `Quick test_bridge_examples ] );
      qsuite "bridge-props"
        [ prop_fo_of_algebra; prop_algebra_of_fo; prop_bridge_roundtrip ];
      ( "owa",
        [ Alcotest.test_case "possible worlds" `Quick test_possible_worlds;
          Alcotest.test_case "owa certain answers" `Quick test_owa_certain_ucq
        ] );
      qsuite "owa-props"
        [ prop_ucq_preserved_under_homs; prop_informativeness_monotone ];
      ( "pos-forall-g",
        [ Alcotest.test_case "formula recogniser" `Quick
            test_pos_forall_g_formulas ] ) ]
