(* Tests for the workload generators: determinism, null-rate control,
   schema conformance of the TPC-H-mini generator, and well-typedness
   of generated queries. *)

open Incdb_relational
open Incdb_workload
open Helpers

let test_generator_deterministic () =
  let gen seed =
    Generator.random_database
      (Generator.make_rng ~seed)
      test_schema ~size:10 ~const_pool:5 ~null_rate:0.2
  in
  Alcotest.(check bool) "same seed, same database" true
    (Database.equal (gen 42) (gen 42));
  Alcotest.(check bool) "different seeds differ" false
    (Database.equal (gen 42) (gen 43))

let test_generator_null_rate () =
  let rng = Generator.make_rng ~seed:7 in
  let next_null = ref 0 in
  (* a large constant pool avoids duplicate complete tuples collapsing
     in the set, which would skew the observed rate *)
  let r =
    Generator.random_relation rng ~arity:2 ~size:500 ~const_pool:100_000
      ~null_rate:0.3 ~next_null
  in
  (* fresh nulls never repeat, so #nulls = #null positions *)
  let nulls = List.length (Relation.nulls r) in
  let positions = 2 * Relation.cardinal r in
  let rate = float_of_int nulls /. float_of_int positions in
  Alcotest.(check bool)
    (Printf.sprintf "observed rate %.3f within [0.2, 0.4]" rate)
    true
    (rate > 0.2 && rate < 0.4);
  (* with rate 0 there are no nulls at all *)
  let complete =
    Generator.random_relation rng ~arity:2 ~size:100 ~const_pool:5
      ~null_rate:0.0 ~next_null
  in
  Alcotest.(check bool) "no nulls at rate 0" true (Relation.is_complete complete)

let test_inject_nulls () =
  let rng = Generator.make_rng ~seed:1 in
  let db =
    Generator.random_database rng test_schema ~size:50 ~const_pool:5
      ~null_rate:0.0
  in
  let injected = Generator.inject_nulls (Generator.make_rng ~seed:2) ~rate:0.25 db in
  Alcotest.(check bool) "nulls were injected" true
    (List.length (Database.nulls injected) > 0);
  Alcotest.(check int) "same total size" (Database.size db)
    (Database.size injected)

let test_random_queries_well_typed () =
  let rng = Generator.make_rng ~seed:5 in
  for _ = 1 to 200 do
    let q = Generator.random_query rng test_schema ~depth:4 ~positive:false in
    Alcotest.(check bool) (Algebra.to_string q) true
      (Algebra.well_typed test_schema q)
  done;
  (* positive queries are recognised as such *)
  for _ = 1 to 200 do
    let q = Generator.random_query rng test_schema ~depth:3 ~positive:true in
    Alcotest.(check bool) (Algebra.to_string q) true
      (Incdb_certain.Classes.is_positive q)
  done

let test_tpch_generate () =
  let rng = Generator.make_rng ~seed:11 in
  let db = Tpch_mini.generate rng ~scale:2 in
  Alcotest.(check int) "customers" 50
    (Relation.cardinal (Database.relation db "customer"));
  Alcotest.(check int) "orders" 100
    (Relation.cardinal (Database.relation db "orders"));
  Alcotest.(check int) "lineitems" 200
    (Relation.cardinal (Database.relation db "lineitem"));
  Alcotest.(check int) "parts" 40
    (Relation.cardinal (Database.relation db "part"));
  Alcotest.(check bool) "complete" true (Database.is_complete db);
  (* foreign keys land in range: every order's custkey is a customer *)
  let custkeys =
    Relation.project [ 0 ] (Database.relation db "customer")
  in
  Alcotest.(check bool) "orders reference customers" true
    (Relation.for_all
       (fun o -> Relation.mem [| o.(1) |] custkeys)
       (Database.relation db "orders"))

let test_tpch_nulls_preserve_keys () =
  let rng = Generator.make_rng ~seed:11 in
  let db = Tpch_mini.generate rng ~scale:1 in
  let nulled = Tpch_mini.with_nulls (Generator.make_rng ~seed:3) ~rate:0.5 db in
  (* key columns stay complete *)
  let col_complete rel idx =
    Relation.for_all (fun t -> Value.is_const t.(idx))
      (Database.relation nulled rel)
  in
  Alcotest.(check bool) "custkey complete" true (col_complete "customer" 0);
  Alcotest.(check bool) "orderkey complete" true (col_complete "orders" 0);
  Alcotest.(check bool) "order custkey complete" true (col_complete "orders" 1);
  Alcotest.(check bool) "nulls present" true
    (List.length (Database.nulls nulled) > 0)

let test_tpch_queries_run () =
  let rng = Generator.make_rng ~seed:11 in
  let db = Tpch_mini.generate rng ~scale:1 in
  let nulled = Tpch_mini.with_nulls (Generator.make_rng ~seed:4) ~rate:0.1 db in
  List.iter
    (fun { Tpch_mini.qname; query; _ } ->
      Alcotest.(check bool)
        (qname ^ " well-typed")
        true
        (Algebra.well_typed Tpch_mini.schema query);
      (* plain evaluation and the Q⁺ approximation both run *)
      let reference = Eval.run db query in
      let approx = Incdb_certain.Scheme_pm.certain_sub db query in
      Alcotest.(check bool)
        (qname ^ " lossless on complete data")
        true
        (Relation.equal reference approx);
      ignore (Incdb_certain.Scheme_pm.certain_sub nulled query);
      ignore (Incdb_certain.Scheme_pm.possible_sup nulled query))
    Tpch_mini.queries

let () =
  Alcotest.run "workload"
    [ ( "generator",
        [ Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "null rate" `Quick test_generator_null_rate;
          Alcotest.test_case "inject nulls" `Quick test_inject_nulls;
          Alcotest.test_case "random queries typed" `Quick
            test_random_queries_well_typed ] );
      ( "tpch-mini",
        [ Alcotest.test_case "generate" `Quick test_tpch_generate;
          Alcotest.test_case "nulls preserve keys" `Quick
            test_tpch_nulls_preserve_keys;
          Alcotest.test_case "queries run" `Quick test_tpch_queries_run ] ) ]
