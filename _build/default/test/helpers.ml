(* Shared helpers and QCheck generators for the incdb test suites. *)

open Incdb_relational

let i n = Value.int n
let s x = Value.str x
let nu n = Value.null n

let tup vs = Tuple.of_list vs

(* The standard test schema used by random-query properties. *)
let test_schema =
  Schema.of_list
    [ ("R", [ "a"; "b" ]); ("S", [ "b"; "c" ]); ("T", [ "t" ]); ("U", [ "u" ]) ]

let relation_tc : Relation.t Alcotest.testable =
  Alcotest.testable Relation.pp Relation.equal

let tuple_tc : Tuple.t Alcotest.testable =
  Alcotest.testable Tuple.pp Tuple.equal

let check_rel msg expected actual = Alcotest.check relation_tc msg expected actual

let rel k tuples = Relation.of_list k (List.map tup tuples)

(* ------------------------------------------------------------------ *)
(* QCheck generators                                                   *)
(* ------------------------------------------------------------------ *)

open QCheck2

(* QCheck2 exposes its own [Tuple]; keep ours in scope *)
module Tuple = Incdb_relational.Tuple

(* a small pool of constants so that collisions with nulls are likely *)
let gen_const : Value.const Gen.t =
  Gen.map (fun n -> Value.Int n) (Gen.int_range 0 4)

(* null labels 0..2: at most 3 distinct nulls per database keeps exact
   certain-answer enumeration fast *)
let gen_null_label : int Gen.t = Gen.int_range 0 2

let gen_value ~null_rate : Value.t Gen.t =
  Gen.bind (Gen.float_range 0.0 1.0) (fun x ->
      if x < null_rate then Gen.map Value.null gen_null_label
      else Gen.map (fun c -> Value.Const c) gen_const)

let gen_tuple ~null_rate k : Tuple.t Gen.t =
  Gen.map Tuple.of_list (Gen.list_size (Gen.return k) (gen_value ~null_rate))

let gen_relation ~null_rate ~max_size k : Relation.t Gen.t =
  Gen.map
    (Relation.of_list k)
    (Gen.list_size (Gen.int_range 0 max_size) (gen_tuple ~null_rate k))

(* databases over [test_schema] *)
let gen_db ?(null_rate = 0.3) ?(max_size = 4) () : Database.t Gen.t =
  let open Gen in
  let* r = gen_relation ~null_rate ~max_size 2 in
  let* s_ = gen_relation ~null_rate ~max_size 2 in
  let* t = gen_relation ~null_rate ~max_size 1 in
  let* u = gen_relation ~null_rate ~max_size 1 in
  return
    (Database.of_list test_schema
       [ ("R", Relation.to_list r); ("S", Relation.to_list s_);
         ("T", Relation.to_list t); ("U", Relation.to_list u) ])

(* conditions over a given arity *)
let gen_condition ?(allow_neq = true) ?(allow_tests = true) arity :
    Condition.t Gen.t =
  let open Gen in
  let col = int_range 0 (arity - 1) in
  let operand =
    oneof
      [ map (fun c -> Condition.Col c) col;
        map (fun c -> Condition.Lit c) gen_const ]
  in
  let atom =
    let eq = map2 (fun x y -> Condition.Eq (x, y)) operand operand in
    let neq = map2 (fun x y -> Condition.Neq (x, y)) operand operand in
    let lt = map2 (fun x y -> Condition.Lt (x, y)) operand operand in
    let le = map2 (fun x y -> Condition.Le (x, y)) operand operand in
    let isc = map (fun c -> Condition.Is_const c) col in
    let isn = map (fun c -> Condition.Is_null c) col in
    let choices =
      [ eq ]
      @ (if allow_neq then [ neq; lt; le ] else [])
      @ (if allow_tests then [ isc; isn ] else [])
    in
    oneof choices
  in
  sized_size (int_range 0 2) (fix (fun self n ->
      if n = 0 then atom
      else
        oneof
          [ atom;
            map2 (fun a b -> Condition.And (a, b)) (self (n - 1)) (self (n - 1));
            map2 (fun a b -> Condition.Or (a, b)) (self (n - 1)) (self (n - 1))
          ]))

(* random relational algebra queries over [test_schema].
   [positive]: no Diff, no ≠/const/null in selections.
   Arities are tracked so queries are always well-typed; arity ≤ 3. *)
let gen_query ?(positive = false) ?(allow_division = false)
    ?(allow_tests = true) () : Algebra.t Gen.t =
  let allow_tests = allow_tests && not positive in
  let open Gen in
  let open Algebra in
  let base =
    oneofl [ Rel "R"; Rel "S"; Rel "T"; Rel "U" ]
  in
  let rec build n =
    if n <= 0 then base
    else
      let sub = build (n - 1) in
      let select =
        let* q = sub in
        let k = arity test_schema q in
        if k = 0 then return q
        else
          let* c =
            gen_condition ~allow_neq:(not positive) ~allow_tests k
          in
          return (Select (c, q))
      in
      let project =
        let* q = sub in
        let k = arity test_schema q in
        if k = 0 then return q
        else
          let* idxs =
            list_size (int_range 1 (min 2 k)) (int_range 0 (k - 1))
          in
          return (Project (idxs, q))
      in
      let product =
        let* q1 = sub in
        let* q2 = sub in
        let k1 = arity test_schema q1
        and k2 = arity test_schema q2 in
        if k1 + k2 > 3 then return q1 else return (Product (q1, q2))
      in
      let same_arity_pair op =
        let* q1 = sub in
        let* q2 = sub in
        let k1 = arity test_schema q1
        and k2 = arity test_schema q2 in
        if k1 = k2 then return (op q1 q2)
        else
          (* fall back to projecting both to their first column *)
          let p q k = if k = 1 then q else Project ([ 0 ], q) in
          return (op (p q1 k1) (p q2 k2))
      in
      let union = same_arity_pair (fun a b -> Union (a, b)) in
      let inter = same_arity_pair (fun a b -> Inter (a, b)) in
      let diff = same_arity_pair (fun a b -> Diff (a, b)) in
      let division =
        let* q1 = sub in
        let k1 = arity test_schema q1 in
        if k1 < 2 then return q1
        else
          let* q2 =
            oneofl [ Rel "T"; Rel "U" ]
          in
          return (Division (q1, q2))
      in
      let choices =
        [ base; select; project; product; union; inter ]
        @ (if positive then [] else [ diff ])
        @ (if allow_division then [ division ] else [])
      in
      oneof choices
  in
  sized_size (int_range 0 3) build

let query_print q = Algebra.to_string q

let db_print db = Format.asprintf "%a" Database.pp db

(* random FO formulas over [test_schema]; variable pool x, y, z.
   [max_quant] bounds quantifier nesting to keep evaluation cheap. *)
let gen_fo ?(allow_assert = false) () : Incdb_logic.Fo.t Gen.t =
  let open Gen in
  let open Incdb_logic.Fo in
  let var = oneofl [ "x"; "y"; "z" ] in
  let term =
    oneof [ map (fun v -> Var v) var; map (fun c -> Cst c) gen_const ]
  in
  let atom =
    oneof
      [ map2 (fun t1 t2 -> Atom ("R", [ t1; t2 ])) term term;
        map2 (fun t1 t2 -> Atom ("S", [ t1; t2 ])) term term;
        map (fun t -> Atom ("T", [ t ])) term;
        map (fun t -> Atom ("U", [ t ])) term;
        map2 (fun t1 t2 -> Eq (t1, t2)) term term;
        map2 (fun t1 t2 -> Lt (t1, t2)) term term;
        map (fun t -> Is_const t) term;
        map (fun t -> Is_null t) term ]
  in
  let rec build n =
    if n <= 0 then atom
    else
      let sub = build (n - 1) in
      let cases =
        [ atom;
          map (fun f -> Not f) sub;
          map2 (fun f g -> And (f, g)) sub sub;
          map2 (fun f g -> Or (f, g)) sub sub;
          map2 (fun x f -> Exists (x, f)) var sub;
          map2 (fun x f -> Forall (x, f)) var sub ]
        @ (if allow_assert then [ map (fun f -> Assert f) sub ] else [])
      in
      oneof cases
  in
  sized_size (int_range 0 3) build

(* positive formulas only: atoms, ∧, ∨, ∃, ∀ — the fragment preserved
   under onto homomorphisms (Section 4.1) *)
let gen_fo_positive () : Incdb_logic.Fo.t Gen.t =
  let open Gen in
  let open Incdb_logic.Fo in
  let var = oneofl [ "x"; "y"; "z" ] in
  let term =
    oneof [ map (fun v -> Var v) var; map (fun c -> Cst c) gen_const ]
  in
  let atom =
    oneof
      [ map2 (fun t1 t2 -> Atom ("R", [ t1; t2 ])) term term;
        map2 (fun t1 t2 -> Atom ("S", [ t1; t2 ])) term term;
        map (fun t -> Atom ("T", [ t ])) term;
        map (fun t -> Atom ("U", [ t ])) term;
        map2 (fun t1 t2 -> Eq (t1, t2)) term term ]
  in
  let rec build n =
    if n <= 0 then atom
    else
      let sub = build (n - 1) in
      oneof
        [ atom;
          map2 (fun f g -> And (f, g)) sub sub;
          map2 (fun f g -> Or (f, g)) sub sub;
          map2 (fun x f -> Exists (x, f)) var sub;
          map2 (fun x f -> Forall (x, f)) var sub ]
  in
  sized_size (int_range 0 3) build

let fo_print f = Incdb_logic.Fo.to_string f

(* all assignments of the free variables of a formula over the active
   domain of a database *)
let fo_assignments db phi =
  let vars = Incdb_logic.Fo.free_vars phi in
  let domain = Database.active_domain db in
  let rec go = function
    | [] -> [ [] ]
    | x :: rest ->
      let tails = go rest in
      List.concat_map (fun d -> List.map (fun tl -> (x, d) :: tl) tails) domain
  in
  go vars
