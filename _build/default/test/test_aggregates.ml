(* Tests for the value-inventing extensions (Section 6): aggregate
   ranges across possible worlds, the three-way answer classification,
   Belnap's four-valued logic, and the alternative bag-valuation
   semantics. *)

open Incdb_relational
open Incdb_certain
open Helpers

let bound_tc : Aggregate.bound Alcotest.testable =
  Alcotest.testable Aggregate.pp_bound (fun a b ->
      Aggregate.compare_bound a b = 0)

(* ------------------------------------------------------------------ *)
(* COUNT                                                               *)
(* ------------------------------------------------------------------ *)

let test_count_range_example () =
  (* {1} − {⊥}: 0 answers if ⊥ = 1, otherwise 1 *)
  let db =
    Database.of_list test_schema
      [ ("T", [ tup [ i 1 ] ]); ("U", [ tup [ nu 0 ] ]) ]
  in
  let q = Algebra.Diff (Rel "T", Rel "U") in
  Alcotest.(check (pair int int)) "count range" (0, 1)
    (Aggregate.count_range db q);
  let lo, hi = Aggregate.count_bounds db q in
  Alcotest.(check (pair int int)) "count bounds" (0, 1) (lo, hi)

let test_count_range_merging () =
  (* T = {⊥0, ⊥1}: two tuples that may collapse into one *)
  let db =
    Database.of_list test_schema [ ("T", [ tup [ nu 0 ]; tup [ nu 1 ] ]) ]
  in
  let q = Algebra.Rel "T" in
  Alcotest.(check (pair int int)) "collapse possible" (1, 2)
    (Aggregate.count_range db q);
  (* the polynomial lower bound must account for the collapse: the
     greedy antichain of {⊥0, ⊥1} has size 1 *)
  let lo, hi = Aggregate.count_bounds db q in
  Alcotest.(check int) "antichain lower bound" 1 lo;
  Alcotest.(check int) "upper bound" 2 hi

(* sandwich: count_bounds ⊆ count_range on random inputs *)
let prop_count_bounds_sound =
  QCheck2.Test.make ~count:60 ~name:"count bounds sandwich the exact range"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(pair (gen_db ~max_size:2 ()) (gen_query ~allow_tests:false ()))
    (fun (db, q) ->
      let blo, bhi = Aggregate.count_bounds db q in
      let rlo, rhi = Aggregate.count_range db q in
      blo <= rlo && rlo <= rhi && rhi <= bhi)

(* ------------------------------------------------------------------ *)
(* SUM / MIN / MAX                                                     *)
(* ------------------------------------------------------------------ *)

let price_db =
  (* R(a, b) as item/price *)
  Database.of_list test_schema
    [ ("R", [ tup [ i 1; i 30 ]; tup [ i 2; i 50 ]; tup [ i 3; nu 0 ] ]) ]

let test_sum_unbounded_with_null () =
  let q = Algebra.Rel "R" in
  let r = Aggregate.range price_db q ~col:1 Aggregate.Sum in
  Alcotest.check bound_tc "sum lo" Aggregate.Neg_inf r.Aggregate.lo;
  Alcotest.check bound_tc "sum hi" Aggregate.Pos_inf r.Aggregate.hi

let test_min_clamped_by_certain () =
  let q = Algebra.Rel "R" in
  let r = Aggregate.range price_db q ~col:1 Aggregate.Min in
  (* the unknown price can be arbitrarily small, but MIN ≤ 30 always *)
  Alcotest.check bound_tc "min lo" Aggregate.Neg_inf r.Aggregate.lo;
  Alcotest.check bound_tc "min hi" (Aggregate.Fin 30) r.Aggregate.hi;
  Alcotest.(check bool) "never empty" false r.Aggregate.empty_possible;
  let r = Aggregate.range price_db q ~col:1 Aggregate.Max in
  Alcotest.check bound_tc "max lo" (Aggregate.Fin 50) r.Aggregate.lo;
  Alcotest.check bound_tc "max hi" Aggregate.Pos_inf r.Aggregate.hi

let test_exact_range_nullfree_column () =
  (* aggregate over a null-free column: exact finite range even though
     the answer set varies across worlds *)
  let db =
    Database.of_list test_schema
      [ ("R", [ tup [ i 1; i 30 ]; tup [ nu 0; i 50 ] ]);
        ("T", [ tup [ i 1 ] ]) ]
  in
  (* prices of items in T: the second item is in T only when ⊥ = 1 *)
  let q =
    Algebra.Project
      ( [ 1 ],
        Algebra.Select
          (Condition.eq_col 0 2, Algebra.Product (Rel "R", Rel "T")) )
  in
  let r = Aggregate.range db q ~col:0 Aggregate.Sum in
  (* world ⊥=1: answers {30, 50}, sum 80; other worlds: {30} *)
  Alcotest.check bound_tc "sum lo" (Aggregate.Fin 30) r.Aggregate.lo;
  Alcotest.check bound_tc "sum hi" (Aggregate.Fin 80) r.Aggregate.hi;
  let r = Aggregate.range db q ~col:0 Aggregate.Max in
  Alcotest.check bound_tc "max hi" (Aggregate.Fin 50) r.Aggregate.hi;
  Alcotest.(check bool) "30 always present" false r.Aggregate.empty_possible

let test_string_column_rejected () =
  let db =
    Database.of_list test_schema [ ("T", [ tup [ Value.str "x" ] ]) ]
  in
  match Aggregate.range db (Algebra.Rel "T") ~col:0 Aggregate.Sum with
  | _ -> Alcotest.fail "string column accepted"
  | exception Aggregate.Unsupported _ -> ()

(* exact ranges contain the aggregate of every canonical world; checked
   independently of the implementation's own world enumeration *)
let prop_sum_range_covers_worlds =
  QCheck2.Test.make ~count:50 ~name:"SUM range covers every world"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(
      pair (gen_db ~max_size:2 ()) (gen_query ~allow_tests:false ()))
    (fun (db, q) ->
      let k = Algebra.arity test_schema q in
      if k = 0 then true
      else
        match Aggregate.range db q ~col:0 Aggregate.Sum with
        | exception Aggregate.Unsupported _ -> true
        | r ->
          let worlds =
            Certainty.canonical_worlds ~query_consts:(Algebra.consts q) db
          in
          List.for_all
            (fun (_, world) ->
              let answer = Eval.run world q in
              match
                Relation.fold
                  (fun t acc ->
                    match t.(0), acc with
                    | Value.Const (Value.Int n), Some s -> Some (s + n)
                    | _, _ -> None)
                  answer (Some 0)
              with
              | None -> true (* non-integer values: nothing to check *)
              | Some sum ->
                Aggregate.compare_bound r.Aggregate.lo (Aggregate.Fin sum) <= 0
                && Aggregate.compare_bound (Aggregate.Fin sum) r.Aggregate.hi
                   <= 0)
            worlds)

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

let test_classify_example () =
  let db =
    Database.of_list test_schema
      [ ("T", [ tup [ i 1 ]; tup [ i 2 ] ]); ("U", [ tup [ nu 0 ] ]) ]
  in
  let q = Algebra.Diff (Rel "T", Rel "U") in
  let check t expected =
    Alcotest.(check string)
      (Tuple.to_string t)
      (Classify.verdict_to_string expected)
      (Classify.verdict_to_string (Classify.classify db q t))
  in
  check (tup [ i 1 ]) Classify.Possible;
  check (tup [ i 9 ]) Classify.Impossible;
  let db2 = Database.of_list test_schema [ ("T", [ tup [ i 1 ] ]) ] in
  Alcotest.(check string) "certain" "certain"
    (Classify.verdict_to_string
       (Classify.classify db2 (Algebra.Rel "T") (tup [ i 1 ])))

(* soundness of the polynomial classifier w.r.t. the exact one:
   polynomial-Certain implies exact-Certain, polynomial-Impossible
   implies exact-Impossible *)
let prop_classify_sound =
  QCheck2.Test.make ~count:50 ~name:"classification is sound both ways"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(pair (gen_db ~max_size:2 ()) (gen_query ~allow_tests:false ()))
    (fun (db, q) ->
      let candidates =
        Relation.to_list (Scheme_pm.possible_sup db q)
        @ [ Tuple.of_list
              (List.init (Algebra.arity test_schema q) (fun _ -> i 99)) ]
      in
      List.for_all
        (fun t ->
          match Classify.classify db q t with
          | Classify.Certain -> Classify.classify_exact db q t = Classify.Certain
          | Classify.Impossible ->
            Classify.classify_exact db q t = Classify.Impossible
          | Classify.Possible -> true)
        candidates)

let test_report () =
  let db =
    Database.of_list test_schema
      [ ("T", [ tup [ i 1 ]; tup [ nu 0 ] ]) ]
  in
  let report = Classify.report db (Algebra.Rel "T") in
  Alcotest.(check int) "two entries" 2 (List.length report);
  Alcotest.(check bool) "all certain for a base relation" true
    (List.for_all (fun (_, v) -> v = Classify.Certain) report)

(* ------------------------------------------------------------------ *)
(* Belnap's logic                                                      *)
(* ------------------------------------------------------------------ *)

let test_belnap_tables () =
  let open Incdb_logic.Belnap in
  Alcotest.(check bool) "n ∧ b = f" true (conj N B = F);
  Alcotest.(check bool) "n ∨ b = t" true (disj N B = T);
  Alcotest.(check bool) "¬b = b" true (neg B = B);
  Alcotest.(check bool) "kmeet t f = n" true (kmeet T F = N);
  Alcotest.(check bool) "kjoin t f = b" true (kjoin T F = B)

let test_belnap_laws () =
  let l4 = Incdb_logic.Laws.of_module (module Incdb_logic.Belnap) in
  Alcotest.(check bool) "distributive" true (Incdb_logic.Laws.distributive l4);
  Alcotest.(check bool) "idempotent" true (Incdb_logic.Laws.idempotent l4);
  Alcotest.(check bool) "de morgan" true (Incdb_logic.Laws.de_morgan l4);
  Alcotest.(check bool) "knowledge monotone" true
    (Incdb_logic.Laws.monotone ~le:Incdb_logic.Belnap.knowledge_le l4)

let test_belnap_kleene_embedding () =
  let open Incdb_logic in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check bool) "conj commutes" true
            (Belnap.conj (Belnap.of_kleene a) (Belnap.of_kleene b)
             = Belnap.of_kleene (Kleene.conj a b));
          Alcotest.(check bool) "disj commutes" true
            (Belnap.disj (Belnap.of_kleene a) (Belnap.of_kleene b)
             = Belnap.of_kleene (Kleene.disj a b)))
        Kleene.values)
    Kleene.values

(* ------------------------------------------------------------------ *)
(* Bag valuation semantics                                             *)
(* ------------------------------------------------------------------ *)

let test_bag_collapse_vs_sum () =
  let b =
    Bag_relation.of_list 1 [ (tup [ nu 0 ], 2); (tup [ i 5 ], 3) ]
  in
  let v = Valuation.of_list [ (0, Value.Int 5) ] in
  Alcotest.(check int) "sum semantics adds" 5
    (Bag_relation.multiplicity (tup [ i 5 ]) (Bag_relation.apply_valuation v b));
  Alcotest.(check int) "collapse keeps the max" 3
    (Bag_relation.multiplicity (tup [ i 5 ])
       (Bag_relation.apply_valuation_collapse v b))

let test_bag_bounds_merge_semantics () =
  (* T = {1, ⊥} as multiplicity-1 tuples; Q = T.  Under sum semantics
     the world ⊥=1 gives 1 multiplicity 2; under collapse it stays 1 *)
  let db =
    Database.of_list test_schema
      [ ("T", [ tup [ i 1 ]; tup [ nu 0 ] ]) ]
  in
  let q = Algebra.Rel "T" in
  Alcotest.(check int) "diamond under sum" 2
    (Bag_bounds.diamond ~merge:`Sum db q (tup [ i 1 ]));
  Alcotest.(check int) "diamond under collapse" 1
    (Bag_bounds.diamond ~merge:`Collapse db q (tup [ i 1 ]));
  Alcotest.(check int) "box agrees here" 1
    (Bag_bounds.box ~merge:`Collapse db q (tup [ i 1 ]))

(* collapse never exceeds sum *)
let prop_collapse_le_sum =
  QCheck2.Test.make ~count:60 ~name:"collapse diamond ≤ sum diamond"
    ~print:(fun (db, q) -> db_print db ^ "\n" ^ query_print q)
    QCheck2.Gen.(pair (gen_db ~max_size:2 ()) (gen_query ~allow_tests:false ()))
    (fun (db, q) ->
      let candidates = Relation.to_list (Incdb_certain.Naive.run db q) in
      List.for_all
        (fun t ->
          Bag_bounds.diamond ~merge:`Collapse db q t
          <= Bag_bounds.diamond ~merge:`Sum db q t)
        candidates)

(* ------------------------------------------------------------------ *)
(* Suite                                                               *)
(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "aggregates"
    [ ( "count",
        [ Alcotest.test_case "difference example" `Quick
            test_count_range_example;
          Alcotest.test_case "merging nulls" `Quick test_count_range_merging ]
      );
      qsuite "count-props" [ prop_count_bounds_sound ];
      ( "sum-min-max",
        [ Alcotest.test_case "sum unbounded with null" `Quick
            test_sum_unbounded_with_null;
          Alcotest.test_case "min clamped by certain" `Quick
            test_min_clamped_by_certain;
          Alcotest.test_case "exact on null-free column" `Quick
            test_exact_range_nullfree_column;
          Alcotest.test_case "string column rejected" `Quick
            test_string_column_rejected ] );
      qsuite "agg-props" [ prop_sum_range_covers_worlds ];
      ( "classify",
        [ Alcotest.test_case "example" `Quick test_classify_example;
          Alcotest.test_case "report" `Quick test_report ] );
      qsuite "classify-props" [ prop_classify_sound ];
      ( "belnap",
        [ Alcotest.test_case "tables" `Quick test_belnap_tables;
          Alcotest.test_case "laws" `Quick test_belnap_laws;
          Alcotest.test_case "kleene embedding" `Quick
            test_belnap_kleene_embedding ] );
      ( "bag-semantics",
        [ Alcotest.test_case "collapse vs sum" `Quick test_bag_collapse_vs_sum;
          Alcotest.test_case "bounds under both" `Quick
            test_bag_bounds_merge_semantics ] );
      qsuite "bag-semantics-props" [ prop_collapse_le_sum ] ]
