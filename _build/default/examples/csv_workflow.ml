(* End-to-end workflow on files: write a small inventory as CSV (the
   way a SQL dump with NULLs would look), load it back, and query it
   under sound semantics.

     dune exec examples/csv_workflow.exe
*)

open Incdb

let () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "incdb_example" in

  (* 1. write the data: NULL cells are Codd nulls; _0 is a marked null
     that repeats (the same unknown warehouse in two rows) *)
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let write name content =
    let oc = open_out (Filename.concat dir name) in
    output_string oc content;
    close_out oc
  in
  write "stock.csv"
    "# sku, warehouse\nsku,warehouse\nbolt,berlin\nnut,_0\nwasher,_0\nscrew,NULL\n";
  write "audited.csv" "warehouse\nberlin\nparis\n";
  Format.printf "Wrote %s/{stock,audited}.csv@.@." dir;

  (* 2. load *)
  let db = Csv_io.load_dir dir in
  Format.printf "Loaded:@.%a@.@." Database.pp db;
  Format.printf "Codd database? %b (the marked null _0 repeats)@.@."
    (Codd.is_codd db);

  (* 3. query: SKUs stored in an unaudited warehouse *)
  let sql =
    "SELECT sku FROM stock WHERE warehouse NOT IN (SELECT warehouse FROM \
     audited)"
  in
  let schema = Database.schema db in
  let q = Sql.To_algebra.translate_string schema sql in
  Format.printf "Query: %s@.@." sql;
  Format.printf "SQL (3VL):        %a@." Relation.pp (Sql.Three_valued.run db sql);
  Format.printf "certain answers:  %a@." Relation.pp
    (Certainty.cert_with_nulls_ra db q);
  Format.printf "possible answers: %a@.@." Relation.pp
    (Scheme_pm.possible_sup db q);

  (* 4. the optimizer tidies the translated plan *)
  let optimized = Optimize.optimize schema q in
  Format.printf "plan:      %s@." (Algebra.to_string q);
  Format.printf "optimized: %s@." (Algebra.to_string optimized);
  assert (Relation.equal (Eval.run db q) (Eval.run db optimized));

  (* 5. round-trip: save the database back out *)
  let out = Filename.concat dir "saved" in
  Csv_io.save_dir out db;
  let reloaded = Csv_io.load_dir out in
  Format.printf "@.save/load round-trip exact: %b@."
    (Database.equal db reloaded)
