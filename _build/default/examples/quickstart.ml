(* Quickstart: build an incomplete database, run a query under every
   answer semantics the library provides, and compare.

     dune exec examples/quickstart.exe
*)

open Incdb

let () =
  (* a tiny schema: people and the cities they work in *)
  let schema =
    Schema.of_list
      [ ("employee", [ "name"; "city" ]); ("office", [ "city" ]) ]
  in

  (* marked nulls: _0 is the same unknown city in both tuples *)
  let db =
    Database.of_list schema
      [ ("employee",
         [ Tuple.of_list [ Value.str "ann"; Value.str "paris" ];
           Tuple.of_list [ Value.str "bob"; Value.null 0 ];
           Tuple.of_list [ Value.str "cyd"; Value.null 0 ] ]);
        ("office", [ Tuple.of_list [ Value.str "paris" ] ]) ]
  in
  Format.printf "Database:@.%a@.@." Database.pp db;

  (* employees without an office in their city:
     π_name(employee) − π_name(σ_{city = office.city}(employee × office)) *)
  let q =
    Algebra.Diff
      ( Algebra.Project ([ 0 ], Algebra.Rel "employee"),
        Algebra.Project
          ( [ 0 ],
            Algebra.Select
              (Condition.eq_col 1 2,
               Algebra.Product (Algebra.Rel "employee", Algebra.Rel "office"))
          ) )
  in
  Format.printf "Query: %a@.@." Algebra.pp q;

  (* 1. naive evaluation: nulls as plain values — fast but unsound *)
  Format.printf "Naive evaluation:      %a@." Relation.pp (Naive.run db q);

  (* 2. exact certain answers (exponential, ground truth) *)
  Format.printf "Certain answers:       %a@." Relation.pp
    (Certainty.cert_with_nulls_ra db q);

  (* 3. polynomial approximations of Figure 2(b): sound under- and
     over-approximations *)
  Format.printf "Q+ (certainly in):     %a@." Relation.pp
    (Scheme_pm.certain_sub db q);
  Format.printf "Q? (possibly in):      %a@." Relation.pp
    (Scheme_pm.possible_sup db q);

  (* 4. probabilistic classification: which answers hold with
     probability 1 in a random possible world? *)
  let acid t =
    if Prob.Zero_one.almost_certainly_true_ra db q t then "yes" else "no"
  in
  Format.printf "Almost certainly ann?  %s@."
    (acid (Tuple.of_list [ Value.str "ann" ]));
  Format.printf "Almost certainly bob?  %s@.@."
    (acid (Tuple.of_list [ Value.str "bob" ]));

  (* 5. what SQL would do, three-valued logic and all *)
  let sql =
    "SELECT name FROM employee WHERE city NOT IN (SELECT city FROM office)"
  in
  Format.printf "SQL 3VL answer to %s:@.  %a@." sql Relation.pp
    (Sql.Three_valued.run db sql)
