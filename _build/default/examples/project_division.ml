(* Universal queries and naive evaluation (Section 4.1, Theorem 4.4):
   "employees who participate in all projects" is a relational-division
   query — a member of the class Pos∀G — so under the closed-world
   semantics the plain naive evaluation already computes the certain
   answers, nulls and all.

     dune exec examples/project_division.exe
*)

open Incdb

let schema =
  Schema.of_list
    [ ("assignment", [ "emp"; "project" ]); ("project", [ "pid" ]) ]

let db =
  Database.of_list schema
    [ ("assignment",
       [ Tuple.of_list [ Value.str "ann"; Value.str "db" ];
         Tuple.of_list [ Value.str "ann"; Value.str "ml" ];
         Tuple.of_list [ Value.str "bob"; Value.str "db" ];
         (* bob's second assignment is to an unknown project *)
         Tuple.of_list [ Value.str "bob"; Value.null 0 ];
         Tuple.of_list [ Value.str "cyd"; Value.null 1 ] ]);
      ("project",
       [ Tuple.of_list [ Value.str "db" ]; Tuple.of_list [ Value.str "ml" ] ])
    ]

let q = Algebra.Division (Algebra.Rel "assignment", Algebra.Rel "project")

let () =
  Format.printf "Database:@.%a@.@." Database.pp db;
  Format.printf "Query: %a  (employees on all projects)@.@." Algebra.pp q;

  Format.printf "The query is in Pos∀G: %b@.@."
    (Classes.is_pos_forall_g q);

  let naive = Naive.run db q in
  let certain = Certainty.cert_with_nulls_ra db q in
  Format.printf "Naive evaluation: %a@." Relation.pp naive;
  Format.printf "Certain answers:  %a@.@." Relation.pp certain;
  assert (Relation.equal naive certain);
  Format.printf
    "They coincide — Theorem 4.4: naive evaluation computes certain@.";
  Format.printf "answers for Pos∀G queries under CWA.@.@.";

  (* contrast: for a query using difference, naive evaluation is not
     certain *)
  let risky =
    Algebra.Diff
      ( Algebra.Project ([ 0 ], Algebra.Rel "assignment"),
        Algebra.Project ([ 0 ], Algebra.Rel "assignment") )
  in
  ignore risky;
  let risky =
    Algebra.Diff
      ( Algebra.Project ([ 1 ], Algebra.Rel "assignment"),
        Algebra.Rel "project" )
  in
  Format.printf "But for %a:@." Algebra.pp risky;
  Format.printf "  naive:   %a@." Relation.pp (Naive.run db risky);
  Format.printf "  certain: %a@." Relation.pp
    (Certainty.cert_with_nulls_ra db risky);
  Format.printf
    "Naive evaluation overshoots — difference is outside Pos∀G.@.";

  (* the division expands to the classical σπ×− form, which the
     approximation schemes can then process *)
  let expanded = Classes.expand_division schema q in
  Format.printf "@.Division expanded: %a@." Algebra.pp expanded;
  Format.printf "Sound approximation Q+: %a@." Relation.pp
    (Scheme_pm.certain_sub db q)
