(* Bag semantics (Section 4.2): real SQL engines count duplicates, so
   certainty becomes a range of multiplicities.  This example tracks an
   inventory ledger with duplicate rows and computes the guaranteed and
   possible multiplicities of each answer, with the polynomial bounds
   of Theorem 4.8 alongside the exact (exponential) values.

     dune exec examples/bag_inventory.exe
*)

open Incdb

let schema =
  Schema.of_list [ ("received", [ "sku" ]); ("shipped", [ "sku" ]) ]

(* two crates of sku 7 received; one shipment is illegible *)
let db =
  Database.of_list schema
    [ ("received",
       [ Tuple.of_list [ Value.int 7 ]; Tuple.of_list [ Value.int 8 ] ]);
      ("shipped", [ Tuple.of_list [ Value.null 0 ] ]) ]

let bags =
  [ ("received",
     Bag_relation.of_list 1
       [ (Tuple.of_list [ Value.int 7 ], 2);
         (Tuple.of_list [ Value.int 8 ], 1) ]);
    ("shipped", Bag_relation.of_list 1 [ (Tuple.of_list [ Value.null 0 ], 1) ]) ]

let q = Algebra.Diff (Algebra.Rel "received", Algebra.Rel "shipped")

let () =
  Format.printf "Ledger (as bags):@.";
  List.iter
    (fun (name, b) -> Format.printf "  %-9s %a@." name Bag_relation.pp b)
    bags;
  Format.printf "@.Query: %a  (stock on hand, EXCEPT ALL)@.@." Algebra.pp q;

  (* bag evaluation treating the null as a value *)
  let naive = Bag_eval.run ~bags db q in
  Format.printf "Naive bag answer: %a@.@." Bag_relation.pp naive;

  (* the (Q+, Q?) translations evaluated under bag semantics bound the
     guaranteed multiplicity #(a, Q+) <= box <= #(a, Q?) *)
  let plus =
    Bag_eval.run ~bags db (Scheme_pm.translate_plus schema q)
  in
  let maybe =
    Bag_eval.run ~bags db (Scheme_pm.translate_maybe schema q)
  in
  Format.printf "Q+ (bag): %a@." Bag_relation.pp plus;
  Format.printf "Q? (bag): %a@.@." Bag_relation.pp maybe;

  (* exact multiplicity ranges, by possible-world enumeration.  Note:
     Bag_bounds works from set-level databases (multiplicity 1 per
     tuple); to exercise true bag instances we recompute here. *)
  let tuples =
    [ Tuple.of_list [ Value.int 7 ]; Tuple.of_list [ Value.int 8 ] ]
  in
  List.iter
    (fun t ->
      let worlds =
        Certainty.canonical_worlds ~query_consts:[] db
      in
      let mults =
        List.map
          (fun (v, world) ->
            let world_bags =
              List.map
                (fun (name, b) -> (name, Bag_relation.apply_valuation v b))
                bags
            in
            Bag_relation.multiplicity (Valuation.apply_tuple v t)
              (Bag_eval.run ~bags:world_bags world q))
          worlds
      in
      let box = List.fold_left min (List.hd mults) mults in
      let diamond = List.fold_left max (List.hd mults) mults in
      Format.printf
        "sku %a: guaranteed multiplicity %d, possible up to %d; bounds [%d, %d]@."
        Tuple.pp t box diamond
        (Bag_relation.multiplicity t plus)
        (Bag_relation.multiplicity t maybe))
    tuples;

  Format.printf
    "@.sku 7: even if the illegible shipment was a 7, one crate remains —@.";
  Format.printf
    "under bag semantics the minimum multiplicity is 1, which the set-@.";
  Format.printf "based certain answers would have missed entirely.@."
