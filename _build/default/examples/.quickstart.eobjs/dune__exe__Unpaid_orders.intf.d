examples/unpaid_orders.mli:
