examples/logic_playground.mli:
