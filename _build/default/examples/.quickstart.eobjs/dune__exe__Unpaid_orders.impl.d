examples/unpaid_orders.ml: Certainty Ctables Database Format Incdb List Relation Schema Scheme_pm Sql Tuple Value
