examples/bag_inventory.mli:
