examples/quickstart.mli:
