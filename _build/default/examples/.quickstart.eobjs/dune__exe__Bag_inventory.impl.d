examples/bag_inventory.ml: Algebra Bag_eval Bag_relation Certainty Database Format Incdb List Schema Scheme_pm Tuple Valuation Value
