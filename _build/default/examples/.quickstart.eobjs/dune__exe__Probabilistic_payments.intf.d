examples/probabilistic_payments.mli:
