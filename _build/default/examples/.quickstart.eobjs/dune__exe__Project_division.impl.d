examples/project_division.ml: Algebra Certainty Classes Database Format Incdb Naive Relation Schema Scheme_pm Tuple Value
