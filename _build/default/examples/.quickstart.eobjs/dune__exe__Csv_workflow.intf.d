examples/csv_workflow.mli:
