examples/quickstart.ml: Algebra Certainty Condition Database Format Incdb Naive Prob Relation Schema Scheme_pm Sql Tuple Value
