examples/logic_playground.ml: Algebra Bridge Database Eval Fo Format Incdb List Logic Relation Schema Semantics String Tuple Value
