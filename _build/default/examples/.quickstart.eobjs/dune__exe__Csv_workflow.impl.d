examples/csv_workflow.ml: Algebra Certainty Codd Csv_io Database Eval Filename Format Incdb Optimize Relation Scheme_pm Sql Sys
