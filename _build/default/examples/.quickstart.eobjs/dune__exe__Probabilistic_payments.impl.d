examples/probabilistic_payments.ml: Algebra Certainty Database Eval Format Incdb List Prob Relation Schema Tuple Value
