examples/project_division.mli:
