examples/supply_chain.ml: Database Datalog Format Incdb Relation Schema Tuple Value
