(* Many-valued logics at work (Section 5): Kleene's tables, the derived
   six-valued logic, the assertion operator, correctness guarantees of
   the unification semantics, and the capture of three-valued FO by
   plain Boolean FO.

     dune exec examples/logic_playground.exe
*)

open Incdb

let () =
  (* Kleene's logic respects the knowledge order; SQL's assertion
     operator does not *)
  let l3 = Logic.Laws.of_module (module Logic.Kleene) in
  Format.printf "Kleene L3v: distributive=%b idempotent=%b monotone=%b@."
    (Logic.Laws.distributive l3) (Logic.Laws.idempotent l3)
    (Logic.Laws.monotone ~le:Logic.Kleene.knowledge_le l3);
  (match Logic.Assertion.knowledge_violation with
   | Some (lo, hi) ->
     Format.printf
       "assertion operator violates knowledge monotonicity at (%s ⪯ %s)@."
       (Logic.Kleene.to_string lo) (Logic.Kleene.to_string hi)
   | None -> assert false);

  (* the six-valued logic is derived, not hard-coded: its connectives
     act on sets of possible world-classes *)
  Format.printf "@.L6v: s ∧ s = %s, s ∨ s = %s, ¬st = %s@."
    (Logic.Sixv.to_string (Logic.Sixv.conj Logic.Sixv.S Logic.Sixv.S))
    (Logic.Sixv.to_string (Logic.Sixv.disj Logic.Sixv.S Logic.Sixv.S))
    (Logic.Sixv.to_string (Logic.Sixv.neg Logic.Sixv.ST));
  let l6 = Logic.Laws.of_module (module Logic.Sixv) in
  let maximal =
    Logic.Laws.maximal_sublogics
      ~satisfying:(fun l ->
        Logic.Laws.distributive l && Logic.Laws.idempotent l)
      l6
  in
  Format.printf "maximal optimiser-friendly sublogics of L6v: %s@."
    (String.concat " | "
       (List.map
          (fun c -> String.concat "," (List.map Logic.Sixv.to_string c))
          maximal));

  (* three-valued evaluation with correctness guarantees *)
  let schema = Schema.of_list [ ("R", [ "a"; "b" ]) ] in
  let db =
    Database.of_list schema
      [ ("R", [ Tuple.of_list [ Value.int 1; Value.null 0 ] ]) ]
  in
  let atom = Fo.Atom ("R", [ Fo.Var "x"; Fo.Var "y" ]) in
  let env = [ ("x", Value.int 1); ("y", Value.int 1) ] in
  Format.printf "@.R = {(1,⊥)}; the atom R(1,1) evaluates to:@.";
  List.iter
    (fun (name, mixed) ->
      Format.printf "  %-10s %s@." name
        (Logic.Kleene.to_string (Semantics.eval mixed db env atom)))
    [ ("boolean", Semantics.all_bool); ("unif", Semantics.all_unif);
      ("nullfree", Semantics.all_nullfree); ("sql", Semantics.sql) ];
  Format.printf
    "only 'unif' reports u — R(1,1) may hold in some world (Cor 5.2)@.";

  (* capture: the three-valued formula becomes three Boolean formulas *)
  let phi = Fo.Not (Fo.Exists ("y", Fo.Eq (Fo.Var "x", Fo.Var "y"))) in
  Format.printf "@.φ = %s@." (Fo.to_string phi);
  List.iter
    (fun tau ->
      Format.printf "  ψ%s = %s@."
        (Logic.Kleene.to_string tau)
        (Fo.to_string (Logic.Capture.truth_formula Semantics.sql phi tau)))
    Logic.Kleene.values;

  (* and the FO ↔ algebra bridge closes the loop *)
  let q = Bridge.algebra_of_fo schema (Fo.Atom ("R", [ Fo.Var "x"; Fo.Var "x" ])) in
  Format.printf "@.R(x,x) as algebra: %s@." (Algebra.to_string q);
  Format.printf "answers: %a@." Relation.pp (Eval.run db q)
