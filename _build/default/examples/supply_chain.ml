(* Recursive certain answers: a supply-chain reachability question
   answered with Datalog over incomplete data.  Positive Datalog is
   monotone, so its naive fixpoint IS the set of certain answers —
   no approximation needed (Theorem 4.3 beyond first-order logic).

     dune exec examples/supply_chain.exe
*)

open Incdb

let schema = Schema.of_list [ ("supplies", [ "vendor"; "client" ]) ]

let db =
  (* acme supplies an unknown intermediary _0, which supplies both
     bolt-co and a second unknown _1; the same _0 also buys from
     mega-corp *)
  Database.of_list schema
    [ ("supplies",
       [ Tuple.of_list [ Value.str "acme"; Value.null 0 ];
         Tuple.of_list [ Value.null 0; Value.str "boltco" ];
         Tuple.of_list [ Value.null 0; Value.null 1 ];
         Tuple.of_list [ Value.str "mega"; Value.null 0 ];
         Tuple.of_list [ Value.str "boltco"; Value.str "shop" ] ]) ]

let program = Datalog.Eval.transitive_closure ~edge:"supplies" ~path:"reaches"

let () =
  Format.printf "Supply graph:@.%a@.@." Database.pp db;
  Format.printf "Program:@.%a@.@." Datalog.Syntax.pp_program program;

  let reaches = Datalog.Eval.run db program "reaches" in
  Format.printf "Certain reachability (naive fixpoint):@.%a@.@." Relation.pp
    reaches;

  let check src dst =
    let t = Tuple.of_list [ Value.str src; Value.str dst ] in
    Format.printf "  %s reaches %s?  %b@." src dst (Relation.mem t reaches)
  in
  check "acme" "boltco";
  check "acme" "shop";
  check "mega" "shop";
  check "boltco" "acme";

  (* the fixpoint equals the exponential ground truth *)
  let exact = Datalog.Eval.certain_exact db program "reaches" in
  Format.printf "@.naive fixpoint = exact certain answers: %b@."
    (Relation.equal reaches exact);
  Format.printf
    "(monotone queries cannot be fooled by nulls: whatever _0 and _1@.";
  Format.printf
    " turn out to be, every derived path exists in every world.)@."
