(* Probabilistic answer classification (Section 4.3): the 0-1 law, the
   convergent sequence mu_k, and exact conditional probabilities under
   integrity constraints.

     dune exec examples/probabilistic_payments.exe
*)

open Incdb

let schema =
  Schema.of_list [ ("stock", [ "item" ]); ("sold", [ "item" ]) ]

(* stock = {1}, sold = {_0}: the running example of Section 4.3 *)
let db =
  Database.of_list schema
    [ ("stock", [ Tuple.of_list [ Value.int 1 ] ]);
      ("sold", [ Tuple.of_list [ Value.null 0 ] ]) ]

let q = Algebra.Diff (Algebra.Rel "stock", Algebra.Rel "sold")

let one = Tuple.of_list [ Value.int 1 ]

let () =
  Format.printf "Database:@.%a@.@." Database.pp db;
  Format.printf "Query: %a  (unsold stock)@.@." Algebra.pp q;

  (* certain answers are empty — the null might be item 1 *)
  Format.printf "Certain answers: %a@." Relation.pp
    (Certainty.cert_with_nulls_ra db q);

  (* but (1) is an answer unless the null hits exactly item 1: the
     finite-range probabilities mu_k converge to 1 *)
  let run d = Eval.run d q in
  let series =
    Prob.Zero_one.mu_series ~run ~query_consts:[] db one
      [ 2; 4; 8; 16; 64 ]
  in
  Format.printf "@.mu_k for k = 2, 4, 8, 16, 64:@.";
  List.iter (fun r -> Format.printf "  %s@." (Prob.Rational.to_string r)) series;

  (* Theorem 4.10: the limit is 1 iff the tuple is in the naive answer *)
  Format.printf "@.0-1 law verdict for (1): mu = %s@."
    (Prob.Rational.to_string (Prob.Zero_one.mu_ra db q one));

  (* now add the constraint sold <= stock (an inclusion dependency):
     the null is forced into {1}, and the probability drops to 0 *)
  let sigma = [ Prob.Constraints.ind "sold" [ 0 ] "stock" [ 0 ] ] in
  Format.printf "@.With the constraint sold[item] <= stock[item]:@.";
  Format.printf "  mu((1) | Sigma) = %s@."
    (Prob.Rational.to_string (Prob.Conditional.mu_ra ~sigma db q one));

  (* the paper's half-and-half example: stock = {1, 2} *)
  let db2 = Database.add_tuple db "stock" (Tuple.of_list [ Value.int 2 ]) in
  let mu = Prob.Conditional.mu_ra ~sigma db2 q in
  Format.printf "@.With stock = {1, 2} and the same constraint:@.";
  Format.printf "  mu((1) | Sigma) = %s@."
    (Prob.Rational.to_string (mu one));
  Format.printf "  mu((2) | Sigma) = %s@."
    (Prob.Rational.to_string (mu (Tuple.of_list [ Value.int 2 ])));
  Format.printf
    "Exactly 1/2 each — Theorem 4.11: the limit exists and is rational.@.";

  (* functional dependencies go through the chase instead *)
  let schema3 = Schema.of_list [ ("price", [ "item"; "amount" ]) ] in
  let db3 =
    Database.of_list schema3
      [ ("price",
         [ Tuple.of_list [ Value.int 1; Value.null 0 ];
           Tuple.of_list [ Value.int 1; Value.int 99 ] ]) ]
  in
  let fds = [ { Prob.Constraints.fd_relation = "price"; lhs = [ 0 ]; rhs = [ 1 ] } ] in
  let q3 = Algebra.Rel "price" in
  let t3 = Tuple.of_list [ Value.int 1; Value.int 99 ] in
  Format.printf "@.FD example: price: item -> amount on %a@." Database.pp db3;
  Format.printf "  mu((1,99) | FD) = %s  (the chase equates _0 with 99)@."
    (Prob.Rational.to_string
       (Prob.Conditional.mu_fd_via_chase
          ~run:(fun d -> Eval.run d q3)
          ~fds db3 t3))
