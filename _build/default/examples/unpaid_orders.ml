(* The paper's running example (Figure 1 and Section 1): a bookstore
   database where a single NULL makes SQL both miss answers and invent
   answers — and how the library's sound evaluation avoids both.

     dune exec examples/unpaid_orders.exe
*)

open Incdb

let schema =
  Schema.of_list
    [ ("Orders", [ "oid"; "title"; "price" ]);
      ("Payments", [ "cid"; "oid" ]);
      ("Customers", [ "cid"; "name" ]) ]

let orders =
  [ Tuple.of_list [ Value.str "o1"; Value.str "Big Data"; Value.int 30 ];
    Tuple.of_list [ Value.str "o2"; Value.str "SQL"; Value.int 35 ];
    Tuple.of_list [ Value.str "o3"; Value.str "Logic"; Value.int 50 ] ]

let customers =
  [ Tuple.of_list [ Value.str "c1"; Value.str "John" ];
    Tuple.of_list [ Value.str "c2"; Value.str "Mary" ] ]

let complete_db =
  Database.of_list schema
    [ ("Orders", orders);
      ("Payments",
       [ Tuple.of_list [ Value.str "c1"; Value.str "o1" ];
         Tuple.of_list [ Value.str "c2"; Value.str "o2" ] ]);
      ("Customers", customers) ]

(* the oid of Mary's payment is lost *)
let null_db =
  Database.of_list schema
    [ ("Orders", orders);
      ("Payments",
       [ Tuple.of_list [ Value.str "c1"; Value.str "o1" ];
         Tuple.of_list [ Value.str "c2"; Value.null 0 ] ]);
      ("Customers", customers) ]

let queries =
  [ ("unpaid orders",
     "SELECT oid FROM Orders WHERE oid NOT IN (SELECT oid FROM Payments)");
    ("customers without a paid order",
     "SELECT C.cid FROM Customers C WHERE NOT EXISTS (SELECT * FROM Orders \
      O, Payments P WHERE C.cid = P.cid AND P.oid = O.oid)");
    ("trivially true filter",
     "SELECT cid FROM Payments WHERE oid = 'o2' OR oid <> 'o2'") ]

let () =
  Format.printf "=== Figure 1: complete database ===@.%a@.@." Database.pp
    complete_db;
  List.iter
    (fun (name, sql) ->
      Format.printf "%-33s -> %a@." name Relation.pp
        (Sql.Three_valued.run complete_db sql))
    queries;

  Format.printf
    "@.=== Now the oid of Mary's payment becomes NULL ===@.%a@.@." Database.pp
    null_db;
  List.iter
    (fun (name, sql) ->
      let sql_answer = Sql.Three_valued.run null_db sql in
      let q = Sql.To_algebra.translate_string schema sql in
      let certain = Certainty.cert_with_nulls_ra null_db q in
      let sound = Scheme_pm.certain_sub null_db q in
      Format.printf "%-33s@." name;
      Format.printf "  SQL (3VL) says:        %a@." Relation.pp sql_answer;
      Format.printf "  certain answers:       %a@." Relation.pp certain;
      Format.printf "  sound approximation:   %a@." Relation.pp sound;
      let fp =
        Relation.diff (Relation.filter Tuple.is_complete sql_answer) certain
      in
      if not (Relation.is_empty fp) then
        Format.printf "  !! SQL invented:       %a@." Relation.pp fp;
      let fn = Relation.diff (Relation.filter Tuple.is_complete certain) sql_answer in
      if not (Relation.is_empty fn) then
        Format.printf "  !! SQL missed:         %a@." Relation.pp fn;
      Format.printf "@.")
    queries;

  (* the aware c-table strategy recovers the tautology answers that the
     rewriting-based approximation misses *)
  let taut =
    Sql.To_algebra.translate_string schema
      "SELECT cid FROM Payments WHERE oid = 'o2' OR oid <> 'o2'"
  in
  Format.printf "aware c-table strategy on the tautology query: %a@."
    Relation.pp
    (Ctables.Ceval.certain Ctables.Ceval.Aware null_db taut)
