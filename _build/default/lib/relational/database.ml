module String_map = Map.Make (String)

type t = {
  schema : Schema.t;
  relations : Relation.t String_map.t;
}

let create schema =
  let relations =
    List.fold_left
      (fun m (d : Schema.relation_decl) ->
        String_map.add d.name (Relation.empty (List.length d.attributes)) m)
      String_map.empty (Schema.relations schema)
  in
  { schema; relations }

let schema db = db.schema

let relation db name =
  match String_map.find_opt name db.relations with
  | Some r -> r
  | None -> raise Not_found

let set_relation db name r =
  if not (Schema.mem db.schema name) then raise Not_found;
  let expected = Schema.arity db.schema name in
  if Relation.arity r <> expected then
    invalid_arg
      (Printf.sprintf
         "Database.set_relation: %s expects arity %d, got %d" name expected
         (Relation.arity r));
  { db with relations = String_map.add name r db.relations }

let add_tuple db name t =
  set_relation db name (Relation.add t (relation db name))

let of_list schema bindings =
  List.fold_left
    (fun db (name, tuples) ->
      let k = Schema.arity schema name in
      set_relation db name (Relation.of_list k tuples))
    (create schema) bindings

let map_relations f db =
  { db with relations = String_map.mapi f db.relations }

let fold f db init =
  String_map.fold f db.relations init

let nulls db =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  fold
    (fun _ r () ->
      List.iter
        (fun n ->
          if not (Hashtbl.mem seen n) then begin
            Hashtbl.add seen n ();
            acc := n :: !acc
          end)
        (Relation.nulls r))
    db ();
  List.sort Int.compare !acc

let consts db =
  let module Cset = Set.Make (struct
    type t = Value.const

    let compare = Value.compare_const
  end) in
  let set =
    fold
      (fun _ r acc ->
        List.fold_left (fun s c -> Cset.add c s) acc (Relation.consts r))
      db Cset.empty
  in
  Cset.elements set

let active_domain db =
  List.map (fun c -> Value.Const c) (consts db)
  @ List.map (fun n -> Value.Null n) (nulls db)

let is_complete db = fold (fun _ r acc -> acc && Relation.is_complete r) db true

let fresh_null db =
  match nulls db with [] -> 0 | ns -> List.fold_left max 0 ns + 1

let equal db1 db2 = String_map.equal Relation.equal db1.relations db2.relations

let size db = fold (fun _ r acc -> acc + Relation.cardinal r) db 0

let pp ppf db =
  let pp_binding ppf (name, r) =
    Format.fprintf ppf "@[<2>%s =@ %a@]" name Relation.pp r
  in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_binding)
    (String_map.bindings db.relations)
