(** Algebraic query optimisation.

    Section 5.2 stresses that database optimisers rely on distributivity
    and idempotency of the underlying logic (and that this is why
    Kleene's logic is the right three-valued choice).  This module
    implements the classical rewrites enabled by those laws, under both
    set and bag semantics on the fragment both share:

    - condition simplification (constant folding, unit/absorption,
      recognising complementary literals);
    - cascading selections and projections;
    - pushing selections through products (splitting conjunctions by
      the side they mention) and through unions;
    - unit and empty-relation elimination for every operator.

    All rewrites preserve the query's semantics tuple-for-tuple — under
    set semantics {e and} (for the shared fragment) bag semantics —
    which the test suite checks by evaluation on random instances; the
    benchmark harness measures the effect on the rewritten queries the
    approximation schemes produce (they contain many redundant guards). *)

(** [simplify_condition θ] — equivalent, usually smaller, condition. *)
val simplify_condition : Condition.t -> Condition.t

(** [optimize schema q] applies the rewrite system to a fixpoint.
    @raise Algebra.Type_error on ill-typed input. *)
val optimize : Schema.t -> Algebra.t -> Algebra.t
