let is_codd db =
  let seen = Hashtbl.create 16 in
  let ok = ref true in
  Database.fold
    (fun _ r () ->
      Relation.iter
        (fun t ->
          Array.iter
            (function
              | Value.Null n ->
                if Hashtbl.mem seen n then ok := false
                else Hashtbl.add seen n ()
              | Value.Const _ -> ())
            t)
        r)
    db ();
  !ok

let coddify_relation ~next_label r =
  Relation.map ~arity:(Relation.arity r)
    (Array.map (function
         | Value.Null _ ->
           let label = !next_label in
           incr next_label;
           Value.Null label
         | Value.Const _ as v -> v))
    r

let coddify db =
  let next_label = ref (Database.fresh_null db) in
  Database.map_relations (fun _ r -> coddify_relation ~next_label r) db

(* Backtracking search for a bijective null renaming mapping r1 onto r2.
   The candidate space is small in the intended (test/experiment) use. *)
let equal_up_to_renaming r1 r2 =
  if Relation.arity r1 <> Relation.arity r2 then false
  else if Relation.cardinal r1 <> Relation.cardinal r2 then false
  else begin
    let module Imap = Map.Make (Int) in
    (* try to extend the bijection so that [t1] maps exactly to [t2] *)
    let match_tuple (fwd, bwd) (t1 : Tuple.t) (t2 : Tuple.t) =
      let n = Tuple.arity t1 in
      let rec loop fwd bwd i =
        if i >= n then Some (fwd, bwd)
        else
          match t1.(i), t2.(i) with
          | Value.Const c1, Value.Const c2 ->
            if Value.equal_const c1 c2 then loop fwd bwd (i + 1) else None
          | Value.Null a, Value.Null b ->
            (match Imap.find_opt a fwd, Imap.find_opt b bwd with
             | Some b', Some a' ->
               if b' = b && a' = a then loop fwd bwd (i + 1) else None
             | None, None -> loop (Imap.add a b fwd) (Imap.add b a bwd) (i + 1)
             | _, _ -> None)
          | Value.Const _, Value.Null _ | Value.Null _, Value.Const _ -> None
      in
      loop fwd bwd 0
    in
    let tuples2 = Relation.to_list r2 in
    let rec search maps used = function
      | [] -> true
      | t1 :: rest ->
        List.exists
          (fun t2 ->
            (not (List.memq t2 used))
            &&
            match match_tuple maps t1 t2 with
            | Some maps' -> search maps' (t2 :: used) rest
            | None -> false)
          tuples2
    in
    search (Imap.empty, Imap.empty) [] (Relation.to_list r1)
  end

let invariant_on db q =
  let before = Eval.run (coddify db) q in
  let after =
    let next_label = ref (Database.fresh_null db + 1_000_000) in
    coddify_relation ~next_label (Eval.run db q)
  in
  equal_up_to_renaming before after
