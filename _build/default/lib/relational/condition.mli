(** Selection conditions, per the grammar of Section 2 of the paper:

    θ ::= const(A) | null(A) | A = B | A = c | A ≠ B | A ≠ c | θ∨θ | θ∧θ

    There is no explicit negation: [negate] propagates negation through
    the condition, interchanging [=]/[≠] and [const]/[null].  Attributes
    are addressed positionally (0-based).  [True] and [False] are added
    as units for the connectives. *)

type operand =
  | Col of int  (** attribute at position [i] *)
  | Lit of Value.const  (** a constant *)

type t =
  | True
  | False
  | Is_const of int  (** const(A) *)
  | Is_null of int  (** null(A) *)
  | Eq of operand * operand  (** A = B, A = c *)
  | Neq of operand * operand  (** A ≠ B, A ≠ c *)
  | Lt of operand * operand  (** A < B — typed comparison, see below *)
  | Le of operand * operand  (** A ≤ B *)
  | And of t * t
  | Or of t * t

(** Order comparisons realise the extension Section 6 sketches under
    "Types of attributes": type-specific comparisons are treated by the
    approximation schemes exactly like disequalities — {!star} guards
    them with [const] tests so that a comparison involving a null is
    never certain.  Under naive evaluation they follow the total order
    of {!Value.compare} (integers numerically, strings lexicographically,
    integers before strings, constants before nulls), so negation
    remains a semantic complement. *)

(** Convenience constructors over column indices. *)

val eq_col : int -> int -> t
val eq_const : int -> Value.const -> t
val neq_col : int -> int -> t
val neq_const : int -> Value.const -> t

(** [negate θ] is ¬θ pushed through the grammar (De Morgan; [=]↔[≠];
    [const]↔[null]; [True]↔[False]). *)
val negate : t -> t

(** [star θ] is the translation θ* of Figure 2: every disequality
    [x ≠ y] becomes [x ≠ y ∧ const(x) (∧ const(y))], so that a
    disequality involving a null is never satisfied.  Equalities and
    const/null tests are unchanged. *)
val star : t -> t

(** [eval t θ] evaluates θ on tuple [t] two-valued, treating nulls as
    ordinary values (naive evaluation): [A = B] holds iff the two values
    are literally equal (e.g. the same null).
    @raise Invalid_argument if a column index is out of bounds. *)
val eval : Tuple.t -> t -> bool

(** [columns θ] is the sorted list of distinct column indices in θ. *)
val columns : t -> int list

(** [max_column θ] is the largest column index mentioned, or [-1]. *)
val max_column : t -> int

(** [shift k θ] adds [k] to every column index (used when a condition on
    a sub-expression is re-evaluated on a product). *)
val shift : int -> t -> t

(** [consts θ] is the list of distinct constants mentioned in θ. *)
val consts : t -> Value.const list

val pp : Format.formatter -> t -> unit
