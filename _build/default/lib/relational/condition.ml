type operand =
  | Col of int
  | Lit of Value.const

type t =
  | True
  | False
  | Is_const of int
  | Is_null of int
  | Eq of operand * operand
  | Neq of operand * operand
  | Lt of operand * operand
  | Le of operand * operand
  | And of t * t
  | Or of t * t

let eq_col i j = Eq (Col i, Col j)
let eq_const i c = Eq (Col i, Lit c)
let neq_col i j = Neq (Col i, Col j)
let neq_const i c = Neq (Col i, Lit c)

let rec negate = function
  | True -> False
  | False -> True
  | Is_const i -> Is_null i
  | Is_null i -> Is_const i
  | Eq (x, y) -> Neq (x, y)
  | Neq (x, y) -> Eq (x, y)
  | Lt (x, y) -> Le (y, x)
  | Le (x, y) -> Lt (y, x)
  | And (a, b) -> Or (negate a, negate b)
  | Or (a, b) -> And (negate a, negate b)

let const_guard = function
  | Col i -> Some (Is_const i)
  | Lit _ -> None

let rec star = function
  | True -> True
  | False -> False
  | Is_const _ as c -> c
  | Is_null _ as c -> c
  | Eq _ as c -> c
  | (Neq (x, y) | Lt (x, y) | Le (x, y)) as c ->
    let add_guard acc op =
      match const_guard op with None -> acc | Some g -> And (acc, g)
    in
    add_guard (add_guard c x) y
  | And (a, b) -> And (star a, star b)
  | Or (a, b) -> Or (star a, star b)

let operand_value t = function
  | Col i ->
    if i < 0 || i >= Tuple.arity t then
      invalid_arg (Printf.sprintf "Condition.eval: column %d out of bounds" i)
    else t.(i)
  | Lit c -> Value.Const c

let rec eval t = function
  | True -> true
  | False -> false
  | Is_const i -> Value.is_const (operand_value t (Col i))
  | Is_null i -> Value.is_null (operand_value t (Col i))
  | Eq (x, y) -> Value.equal (operand_value t x) (operand_value t y)
  | Neq (x, y) -> not (Value.equal (operand_value t x) (operand_value t y))
  | Lt (x, y) -> Value.compare (operand_value t x) (operand_value t y) < 0
  | Le (x, y) -> Value.compare (operand_value t x) (operand_value t y) <= 0
  | And (a, b) -> eval t a && eval t b
  | Or (a, b) -> eval t a || eval t b

let columns cond =
  let rec collect acc = function
    | True | False -> acc
    | Is_const i | Is_null i -> i :: acc
    | Eq (x, y) | Neq (x, y) | Lt (x, y) | Le (x, y) ->
      let add acc = function Col i -> i :: acc | Lit _ -> acc in
      add (add acc x) y
    | And (a, b) | Or (a, b) -> collect (collect acc a) b
  in
  List.sort_uniq Int.compare (collect [] cond)

let max_column cond =
  match List.rev (columns cond) with [] -> -1 | i :: _ -> i

let rec shift k = function
  | True -> True
  | False -> False
  | Is_const i -> Is_const (i + k)
  | Is_null i -> Is_null (i + k)
  | Eq (x, y) -> Eq (shift_op k x, shift_op k y)
  | Neq (x, y) -> Neq (shift_op k x, shift_op k y)
  | Lt (x, y) -> Lt (shift_op k x, shift_op k y)
  | Le (x, y) -> Le (shift_op k x, shift_op k y)
  | And (a, b) -> And (shift k a, shift k b)
  | Or (a, b) -> Or (shift k a, shift k b)

and shift_op k = function
  | Col i -> Col (i + k)
  | Lit _ as op -> op

let consts cond =
  let rec collect acc = function
    | True | False | Is_const _ | Is_null _ -> acc
    | Eq (x, y) | Neq (x, y) | Lt (x, y) | Le (x, y) ->
      let add acc = function
        | Lit c -> if List.exists (Value.equal_const c) acc then acc else c :: acc
        | Col _ -> acc
      in
      add (add acc x) y
    | And (a, b) | Or (a, b) -> collect (collect acc a) b
  in
  List.rev (collect [] cond)

let pp_operand ppf = function
  | Col i -> Format.fprintf ppf "#%d" i
  | Lit c -> Value.pp_const ppf c

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Is_const i -> Format.fprintf ppf "const(#%d)" i
  | Is_null i -> Format.fprintf ppf "null(#%d)" i
  | Eq (x, y) -> Format.fprintf ppf "%a = %a" pp_operand x pp_operand y
  | Neq (x, y) -> Format.fprintf ppf "%a ≠ %a" pp_operand x pp_operand y
  | Lt (x, y) -> Format.fprintf ppf "%a < %a" pp_operand x pp_operand y
  | Le (x, y) -> Format.fprintf ppf "%a ≤ %a" pp_operand x pp_operand y
  | And (a, b) -> Format.fprintf ppf "(%a ∧ %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a ∨ %a)" pp a pp b
