let domain_relation ~extra_consts db =
  let adom = Database.active_domain db in
  let extras =
    List.filter_map
      (fun c ->
        let v = Value.Const c in
        if List.exists (Value.equal v) adom then None else Some v)
      extra_consts
  in
  Relation.of_list 1 (List.map (fun v -> [| v |]) (adom @ extras))

let rec power r k =
  if k = 0 then Relation.of_list 0 [ Tuple.empty ]
  else Relation.product r (power r (k - 1))

let run ?(extra_consts = []) db q =
  ignore (Algebra.arity (Database.schema db) q);
  let dom1 = lazy (domain_relation ~extra_consts db) in
  let rec go = function
    | Algebra.Rel name -> Database.relation db name
    | Algebra.Lit (k, tuples) -> Relation.of_list k tuples
    | Algebra.Select (cond, q1) ->
      Relation.filter (fun t -> Condition.eval t cond) (go q1)
    | Algebra.Project (idxs, q1) -> Relation.project idxs (go q1)
    | Algebra.Product (q1, q2) -> Relation.product (go q1) (go q2)
    | Algebra.Union (q1, q2) -> Relation.union (go q1) (go q2)
    | Algebra.Inter (q1, q2) -> Relation.inter (go q1) (go q2)
    | Algebra.Diff (q1, q2) -> Relation.diff (go q1) (go q2)
    | Algebra.Division (q1, q2) -> Relation.division (go q1) (go q2)
    | Algebra.Anti_unify_join (q1, q2) ->
      Relation.anti_unify_semijoin (go q1) (go q2)
    | Algebra.Dom k -> power (Lazy.force dom1) k
  in
  go q

let boolean r =
  if Relation.arity r <> 0 then
    invalid_arg "Eval.boolean: relation of nonzero arity";
  not (Relation.is_empty r)
