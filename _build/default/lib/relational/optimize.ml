(* All rewrites below are valid under BOTH set and bag semantics (on the
   fragment bags support); rules that hold only for sets — such as
   Union(q, q) → q — are deliberately omitted so that one optimizer
   serves both evaluators. *)

let rec flatten_and = function
  | Condition.And (a, b) -> flatten_and a @ flatten_and b
  | c -> [ c ]

let rec flatten_or = function
  | Condition.Or (a, b) -> flatten_or a @ flatten_or b
  | c -> [ c ]

let complement = function
  | Condition.Eq (x, y) -> Some (Condition.Neq (x, y))
  | Condition.Neq (x, y) -> Some (Condition.Eq (x, y))
  | Condition.Lt (x, y) -> Some (Condition.Le (y, x))
  | Condition.Le (x, y) -> Some (Condition.Lt (y, x))
  | Condition.Is_const i -> Some (Condition.Is_null i)
  | Condition.Is_null i -> Some (Condition.Is_const i)
  | Condition.True | Condition.False | Condition.And _ | Condition.Or _ ->
    None

let rebuild unit_ op = function
  | [] -> unit_
  | c :: cs -> List.fold_left op c cs

let rec simplify_condition cond =
  match cond with
  | Condition.True | Condition.False | Condition.Is_const _
  | Condition.Is_null _ ->
    cond
  | Condition.Eq (x, y) ->
    (match x, y with
     | Condition.Lit a, Condition.Lit b ->
       if Value.equal_const a b then Condition.True else Condition.False
     | Condition.Col i, Condition.Col j when i = j -> Condition.True
     | _, _ -> cond)
  | Condition.Neq (x, y) ->
    (match x, y with
     | Condition.Lit a, Condition.Lit b ->
       if Value.equal_const a b then Condition.False else Condition.True
     | Condition.Col i, Condition.Col j when i = j -> Condition.False
     | _, _ -> cond)
  | Condition.Lt (x, y) ->
    (match x, y with
     | Condition.Lit a, Condition.Lit b ->
       if Value.compare_const a b < 0 then Condition.True else Condition.False
     | Condition.Col i, Condition.Col j when i = j -> Condition.False
     | _, _ -> cond)
  | Condition.Le (x, y) ->
    (match x, y with
     | Condition.Lit a, Condition.Lit b ->
       if Value.compare_const a b <= 0 then Condition.True else Condition.False
     | Condition.Col i, Condition.Col j when i = j -> Condition.True
     | _, _ -> cond)
  | Condition.And _ ->
    let parts = List.map simplify_condition (flatten_and cond) in
    if List.mem Condition.False parts then Condition.False
    else begin
      let parts =
        List.sort_uniq compare
          (List.filter (fun p -> p <> Condition.True) parts)
      in
      let contradictory =
        List.exists
          (fun p ->
            match complement p with
            | Some q -> List.mem q parts
            | None -> false)
          parts
      in
      if contradictory then Condition.False
      else rebuild Condition.True (fun a b -> Condition.And (a, b)) parts
    end
  | Condition.Or _ ->
    let parts = List.map simplify_condition (flatten_or cond) in
    if List.mem Condition.True parts then Condition.True
    else begin
      let parts =
        List.sort_uniq compare
          (List.filter (fun p -> p <> Condition.False) parts)
      in
      let tautological =
        List.exists
          (fun p ->
            match complement p with
            | Some q -> List.mem q parts
            | None -> false)
          parts
      in
      if tautological then Condition.True
      else rebuild Condition.False (fun a b -> Condition.Or (a, b)) parts
    end

let is_empty_lit = function
  | Algebra.Lit (_, []) -> true
  | _ -> false

let empty k = Algebra.Lit (k, [])

(* remap a condition through a projection list: column i of the
   projected output is column (List.nth idxs i) of the input *)
let remap_through_projection idxs cond =
  let table = Array.of_list idxs in
  let rec go = function
    | Condition.True -> Condition.True
    | Condition.False -> Condition.False
    | Condition.Is_const i -> Condition.Is_const table.(i)
    | Condition.Is_null i -> Condition.Is_null table.(i)
    | Condition.Eq (x, y) -> Condition.Eq (op x, op y)
    | Condition.Neq (x, y) -> Condition.Neq (op x, op y)
    | Condition.Lt (x, y) -> Condition.Lt (op x, op y)
    | Condition.Le (x, y) -> Condition.Le (op x, op y)
    | Condition.And (a, b) -> Condition.And (go a, go b)
    | Condition.Or (a, b) -> Condition.Or (go a, go b)
  and op = function
    | Condition.Col i -> Condition.Col table.(i)
    | Condition.Lit _ as o -> o
  in
  go cond

let optimize schema q =
  ignore (Algebra.arity schema q);
  let rec pass q =
    match q with
    | Algebra.Rel _ | Algebra.Lit _ | Algebra.Dom _ -> q
    | Algebra.Select (cond, q1) ->
      let q1 = pass q1 in
      let cond = simplify_condition cond in
      (match cond, q1 with
       | Condition.True, _ -> q1
       | Condition.False, _ -> empty (Algebra.arity schema q1)
       | _, _ when is_empty_lit q1 -> q1
       (* cascade: σa(σb(q)) = σ(a ∧ b)(q) *)
       | _, Algebra.Select (inner, q2) ->
         pass
           (Algebra.Select
              (simplify_condition (Condition.And (cond, inner)), q2))
       (* push through union/intersection/difference *)
       | _, Algebra.Union (a, b) ->
         Algebra.Union
           (pass (Algebra.Select (cond, a)), pass (Algebra.Select (cond, b)))
       | _, Algebra.Inter (a, b) ->
         Algebra.Inter
           (pass (Algebra.Select (cond, a)), pass (Algebra.Select (cond, b)))
       | _, Algebra.Diff (a, b) ->
         Algebra.Diff
           (pass (Algebra.Select (cond, a)), pass (Algebra.Select (cond, b)))
       (* push through projection *)
       | _, Algebra.Project (idxs, q2) ->
         Algebra.Project
           (idxs, pass (Algebra.Select (remap_through_projection idxs cond, q2)))
       (* split conjuncts by the product side they mention *)
       | _, Algebra.Product (a, b) ->
         let k1 = Algebra.arity schema a in
         let conjuncts = flatten_and cond in
         let left, rest =
           List.partition
             (fun c -> Condition.max_column c < k1 && Condition.columns c <> [])
             conjuncts
         in
         let right, mixed =
           List.partition
             (fun c ->
               Condition.columns c <> []
               && List.for_all (fun i -> i >= k1) (Condition.columns c))
             rest
         in
         if left = [] && right = [] then Algebra.Select (cond, q1)
         else begin
           let a' =
             match left with
             | [] -> a
             | cs ->
               pass
                 (Algebra.Select
                    (rebuild Condition.True
                       (fun x y -> Condition.And (x, y))
                       cs, a))
           in
           let b' =
             match right with
             | [] -> b
             | cs ->
               let shifted = List.map (Condition.shift (-k1)) cs in
               pass
                 (Algebra.Select
                    (rebuild Condition.True
                       (fun x y -> Condition.And (x, y))
                       shifted, b))
           in
           let core = Algebra.Product (a', b') in
           match mixed with
           | [] -> core
           | cs ->
             Algebra.Select
               ( simplify_condition
                   (rebuild Condition.True
                      (fun x y -> Condition.And (x, y))
                      cs),
                 core )
         end
       | _, _ -> Algebra.Select (cond, q1))
    | Algebra.Project (idxs, q1) ->
      let q1 = pass q1 in
      let k = Algebra.arity schema q1 in
      if is_empty_lit q1 then empty (List.length idxs)
      else if idxs = List.init k (fun i -> i) then q1
      else
        (match q1 with
         (* cascade: π_a(π_b(q)) = π_{b∘a}(q) *)
         | Algebra.Project (inner, q2) ->
           let composed = List.map (List.nth inner) idxs in
           pass (Algebra.Project (composed, q2))
         | _ -> Algebra.Project (idxs, q1))
    | Algebra.Product (q1, q2) ->
      let q1 = pass q1 and q2 = pass q2 in
      if is_empty_lit q1 then empty (Algebra.arity schema q)
      else if is_empty_lit q2 then empty (Algebra.arity schema q)
      else if q2 = Algebra.Lit (0, [ Tuple.empty ]) then q1
      else if q1 = Algebra.Lit (0, [ Tuple.empty ]) then q2
      else Algebra.Product (q1, q2)
    | Algebra.Union (q1, q2) ->
      let q1 = pass q1 and q2 = pass q2 in
      if is_empty_lit q1 then q2
      else if is_empty_lit q2 then q1
      else Algebra.Union (q1, q2)
    | Algebra.Inter (q1, q2) ->
      let q1 = pass q1 and q2 = pass q2 in
      if is_empty_lit q1 || is_empty_lit q2 then
        empty (Algebra.arity schema q1)
      else if q1 = q2 then q1
      else Algebra.Inter (q1, q2)
    | Algebra.Diff (q1, q2) ->
      let q1 = pass q1 and q2 = pass q2 in
      if is_empty_lit q1 then q1
      else if is_empty_lit q2 then q1
      else if q1 = q2 then empty (Algebra.arity schema q1)
      else Algebra.Diff (q1, q2)
    | Algebra.Division (q1, q2) ->
      let q1 = pass q1 and q2 = pass q2 in
      if is_empty_lit q1 then
        empty (Algebra.arity schema q1 - Algebra.arity schema q2)
      else Algebra.Division (q1, q2)
    | Algebra.Anti_unify_join (q1, q2) ->
      let q1 = pass q1 and q2 = pass q2 in
      if is_empty_lit q1 then q1
      else if is_empty_lit q2 then q1
      else Algebra.Anti_unify_join (q1, q2)
  in
  let rec fixpoint q budget =
    let q' = pass q in
    if q' = q || budget = 0 then q' else fixpoint q' (budget - 1)
  in
  fixpoint q 8
