(** Tuples of database values.

    A [k]-tuple is an immutable array of {!Value.t} of length [k].  The
    empty tuple [()] (arity 0) represents the Boolean answer [true] when
    present in a query result. *)

type t = Value.t array

val arity : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool

(** The unique tuple of arity zero. *)
val empty : t

val of_list : Value.t list -> t
val to_list : t -> Value.t list

(** [concat t1 t2] is the juxtaposition [t1 t2]. *)
val concat : t -> t -> t

(** [project idxs t] keeps the components of [t] at the 0-based positions
    in [idxs], in the order given.  Indices may repeat.
    @raise Invalid_argument if an index is out of bounds. *)
val project : int list -> t -> t

(** [unifiable t1 t2] holds iff some valuation of nulls makes [t1] and
    [t2] equal: componentwise unifiability {e together with} consistency
    of repeated nulls (e.g. [(_1, _1)] does not unify with [(0, 1)]).
    This is the relation written r̄ ⇑ s̄ in the paper; it is decided by
    union-find style matching in near-linear time. *)
val unifiable : t -> t -> bool

(** [nulls t] lists the distinct null labels occurring in [t]. *)
val nulls : t -> int list

(** [consts t] lists the distinct constants occurring in [t]. *)
val consts : t -> Value.const list

(** [is_complete t] holds iff [t] contains no null. *)
val is_complete : t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
