(** Database values: constants and marked nulls.

    Following the model of Section 2 of the paper, databases are populated
    by elements of two countably infinite disjoint sets: constants
    ([Const]) and nulls ([Null]).  Nulls are {e marked} (labelled): the
    same null may occur several times in a database, and two occurrences
    of the same label denote the same unknown value.  Codd nulls (SQL's
    [NULL]) are the special case in which no label repeats. *)

(** Constants.  [Gen] constants are "invented" witnesses used internally
    by canonical valuation enumeration and naive evaluation; they never
    appear in user data and compare distinct from all [Int] and [Str]
    constants. *)
type const =
  | Int of int
  | Str of string
  | Gen of int

(** A value is a constant or a marked null [Null i]. *)
type t =
  | Const of const
  | Null of int

val compare_const : const -> const -> int
val equal_const : const -> const -> bool

val compare : t -> t -> int
val equal : t -> t -> bool

val is_const : t -> bool
val is_null : t -> bool

(** [unifiable v w] holds iff there is a valuation [u] of nulls with
    [u v = u w]; i.e. iff [v] and [w] are equal, or at least one of them
    is a null. *)
val unifiable : t -> t -> bool

(** Convenience constructors. *)

val int : int -> t
val str : string -> t
val null : int -> t

val pp_const : Format.formatter -> const -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
