type kind =
  | Arbitrary
  | Onto
  | Strong_onto

type t = (int * Value.t) list

module Int_map = Map.Make (Int)

let facts db =
  Database.fold
    (fun name r acc ->
      Relation.fold (fun tuple acc -> (name, tuple) :: acc) r acc)
    db []

let apply_map m v =
  match v with
  | Value.Const _ -> v
  | Value.Null n -> (match Int_map.find_opt n m with Some w -> w | None -> v)

(* Try to extend [m] so that the source tuple maps exactly onto the target
   tuple; constants must match literally. *)
let match_tuple m (src : Tuple.t) (tgt : Tuple.t) =
  if Tuple.arity src <> Tuple.arity tgt then None
  else
    let n = Tuple.arity src in
    let rec loop m i =
      if i >= n then Some m
      else
        match src.(i) with
        | Value.Const _ as c ->
          if Value.equal c tgt.(i) then loop m (i + 1) else None
        | Value.Null x ->
          (match Int_map.find_opt x m with
           | Some w -> if Value.equal w tgt.(i) then loop m (i + 1) else None
           | None -> loop (Int_map.add x tgt.(i) m) (i + 1))
    in
    loop m 0

let value_set db =
  List.sort_uniq Value.compare (Database.active_domain db)

let image_of_domain m ~from_ =
  List.sort_uniq Value.compare
    (List.map (apply_map m) (Database.active_domain from_))

let covers_all_facts m ~from_ ~to_ =
  (* strong onto: every target fact is the image of a source fact *)
  let src_facts = facts from_ in
  List.for_all
    (fun (name, tgt) ->
      List.exists
        (fun (name', src) ->
          String.equal name name'
          && Tuple.equal (Array.map (apply_map m) src) tgt)
        src_facts)
    (facts to_)

let kind_ok kind m ~from_ ~to_ =
  match kind with
  | Arbitrary -> true
  | Onto ->
    let image = image_of_domain m ~from_ in
    let target = value_set to_ in
    List.length image = List.length target
    && List.for_all2 Value.equal image target
  | Strong_onto -> covers_all_facts m ~from_ ~to_

let find ?(kind = Arbitrary) ~from_ ~to_ () =
  let src_facts = facts from_ in
  let target_tuples name = Relation.to_list (Database.relation to_ name) in
  (* assign unmatched nulls (occurring in no fact cannot happen, but nulls
     may remain unassigned if from_ has a relation-free null — impossible
     since nulls come from facts; keep total anyway) *)
  let rec search m = function
    | [] ->
      (* the map is total: every null of [from_] occurs in some fact *)
      if kind_ok kind m ~from_ ~to_ then Some m else None
    | (name, src) :: rest ->
      let rec try_targets = function
        | [] -> None
        | tgt :: more ->
          (match match_tuple m src tgt with
           | Some m' ->
             (match search m' rest with
              | Some _ as r -> r
              | None -> try_targets more)
           | None -> try_targets more)
      in
      try_targets (target_tuples name)
  in
  match search Int_map.empty src_facts with
  | Some m -> Some (Int_map.bindings m)
  | None -> None

let exists ?kind ~from_ ~to_ () =
  match find ?kind ~from_ ~to_ () with Some _ -> true | None -> false

let apply h db =
  let m = List.fold_left (fun m (n, v) -> Int_map.add n v m) Int_map.empty h in
  Database.map_relations
    (fun _ r ->
      Relation.map ~arity:(Relation.arity r) (Array.map (apply_map m)) r)
    db

(* like [find], but enumerates assignments until [accept] approves one *)
let find_such ~from_ ~to_ ~accept =
  let src_facts = facts from_ in
  let target_tuples name = Relation.to_list (Database.relation to_ name) in
  let rec search m = function
    | [] -> if accept m then Some m else None
    | (name, src) :: rest ->
      let rec try_targets = function
        | [] -> None
        | tgt :: more ->
          (match match_tuple m src tgt with
           | Some m' ->
             (match search m' rest with
              | Some _ as r -> r
              | None -> try_targets more)
           | None -> try_targets more)
      in
      try_targets (target_tuples name)
  in
  search Int_map.empty src_facts

let image_size m db =
  Database.fold
    (fun _ r acc ->
      acc
      + Relation.cardinal
          (Relation.map ~arity:(Relation.arity r)
             (Array.map (apply_map m))
             r))
    db 0

let shrinking_endomorphism db =
  let total = Database.size db in
  match
    find_such ~from_:db ~to_:db ~accept:(fun m -> image_size m db < total)
  with
  | Some m -> Some (Int_map.bindings m)
  | None -> None

let rec core db =
  match shrinking_endomorphism db with
  | None -> db
  | Some h -> core (apply h db)

let hom_equivalent d1 d2 =
  (match find ~from_:d1 ~to_:d2 () with Some _ -> true | None -> false)
  && (match find ~from_:d2 ~to_:d1 () with Some _ -> true | None -> false)

let is_homomorphism h ~from_ ~to_ =
  let m = List.fold_left (fun m (n, v) -> Int_map.add n v m) Int_map.empty h in
  List.for_all
    (fun (name, src) ->
      Relation.mem (Array.map (apply_map m) src) (Database.relation to_ name))
    (facts from_)
