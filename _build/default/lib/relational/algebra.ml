type t =
  | Rel of string
  | Lit of int * Tuple.t list
  | Select of Condition.t * t
  | Project of int list * t
  | Product of t * t
  | Union of t * t
  | Inter of t * t
  | Diff of t * t
  | Division of t * t
  | Anti_unify_join of t * t
  | Dom of int

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let rec arity schema q =
  match q with
  | Rel name ->
    (try Schema.arity schema name
     with Not_found -> type_error "unknown relation %s" name)
  | Lit (k, tuples) ->
    List.iter
      (fun t ->
        if Tuple.arity t <> k then
          type_error "literal tuple of arity %d in Lit of arity %d"
            (Tuple.arity t) k)
      tuples;
    k
  | Select (cond, q1) ->
    let k = arity schema q1 in
    if Condition.max_column cond >= k then
      type_error "selection refers to column %d of a %d-ary input"
        (Condition.max_column cond) k;
    k
  | Project (idxs, q1) ->
    let k = arity schema q1 in
    List.iter
      (fun i ->
        if i < 0 || i >= k then
          type_error "projection on column %d of a %d-ary input" i k)
      idxs;
    List.length idxs
  | Product (q1, q2) -> arity schema q1 + arity schema q2
  | Union (q1, q2) | Inter (q1, q2) | Diff (q1, q2)
  | Anti_unify_join (q1, q2) ->
    let k1 = arity schema q1 and k2 = arity schema q2 in
    if k1 <> k2 then type_error "binary operator on arities %d and %d" k1 k2;
    k1
  | Division (q1, q2) ->
    let k1 = arity schema q1 and k2 = arity schema q2 in
    if k2 > k1 then type_error "division of arity %d by arity %d" k1 k2;
    k1 - k2
  | Dom k ->
    if k < 0 then type_error "Dom of negative arity %d" k;
    k

let well_typed schema q =
  match arity schema q with _ -> true | exception Type_error _ -> false

let relations q =
  let rec collect acc = function
    | Rel name -> if List.mem name acc then acc else name :: acc
    | Lit _ | Dom _ -> acc
    | Select (_, q1) | Project (_, q1) -> collect acc q1
    | Product (q1, q2) | Union (q1, q2) | Inter (q1, q2) | Diff (q1, q2)
    | Division (q1, q2) | Anti_unify_join (q1, q2) ->
      collect (collect acc q1) q2
  in
  List.rev (collect [] q)

let consts q =
  let add acc c =
    if List.exists (Value.equal_const c) acc then acc else c :: acc
  in
  let rec collect acc = function
    | Rel _ | Dom _ -> acc
    | Lit (_, tuples) ->
      List.fold_left
        (fun acc t -> List.fold_left add acc (Tuple.consts t))
        acc tuples
    | Select (cond, q1) ->
      collect (List.fold_left add acc (Condition.consts cond)) q1
    | Project (_, q1) -> collect acc q1
    | Product (q1, q2) | Union (q1, q2) | Inter (q1, q2) | Diff (q1, q2)
    | Division (q1, q2) | Anti_unify_join (q1, q2) ->
      collect (collect acc q1) q2
  in
  List.rev (collect [] q)

let rec uses_dom = function
  | Dom _ -> true
  | Rel _ | Lit _ -> false
  | Select (_, q1) | Project (_, q1) -> uses_dom q1
  | Product (q1, q2) | Union (q1, q2) | Inter (q1, q2) | Diff (q1, q2)
  | Division (q1, q2) | Anti_unify_join (q1, q2) ->
    uses_dom q1 || uses_dom q2

let rec size = function
  | Rel _ | Lit _ | Dom _ -> 1
  | Select (_, q1) | Project (_, q1) -> 1 + size q1
  | Product (q1, q2) | Union (q1, q2) | Inter (q1, q2) | Diff (q1, q2)
  | Division (q1, q2) | Anti_unify_join (q1, q2) ->
    1 + size q1 + size q2

let rec pp ppf = function
  | Rel name -> Format.pp_print_string ppf name
  | Lit (k, tuples) ->
    Format.fprintf ppf "lit/%d%a" k Relation.pp (Relation.of_list k tuples)
  | Select (cond, q1) -> Format.fprintf ppf "σ[%a](%a)" Condition.pp cond pp q1
  | Project (idxs, q1) ->
    Format.fprintf ppf "π[%a](%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
         Format.pp_print_int)
      idxs pp q1
  | Product (q1, q2) -> Format.fprintf ppf "(%a × %a)" pp q1 pp q2
  | Union (q1, q2) -> Format.fprintf ppf "(%a ∪ %a)" pp q1 pp q2
  | Inter (q1, q2) -> Format.fprintf ppf "(%a ∩ %a)" pp q1 pp q2
  | Diff (q1, q2) -> Format.fprintf ppf "(%a − %a)" pp q1 pp q2
  | Division (q1, q2) -> Format.fprintf ppf "(%a ÷ %a)" pp q1 pp q2
  | Anti_unify_join (q1, q2) -> Format.fprintf ppf "(%a ⋉⇑̸ %a)" pp q1 pp q2
  | Dom k -> Format.fprintf ppf "Dom^%d" k

let to_string q = Format.asprintf "%a" pp q
