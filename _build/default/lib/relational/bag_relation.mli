(** Relations under bag semantics: tuples with positive multiplicities.

    This is the data model of SQL (Section 4.2, "Bag semantics"):
    [#(ā, R)] is the number of occurrences of [ā] in [R].  Operations
    follow SQL: union adds multiplicities ([UNION ALL]), difference
    subtracts them down to zero ([EXCEPT ALL]), intersection takes the
    minimum, product multiplies, projection adds up the multiplicities
    of merged tuples. *)

type t

val empty : int -> t
val arity : t -> int

(** Total number of tuple occurrences. *)
val cardinal : t -> int

(** Number of distinct tuples. *)
val support_size : t -> int

val is_empty : t -> bool

(** [multiplicity tuple bag] is [#(tuple, bag)], 0 when absent. *)
val multiplicity : Tuple.t -> t -> int

(** [add ?count tuple bag] inserts [count] (default 1) occurrences.
    @raise Invalid_argument if [count <= 0] or on arity mismatch. *)
val add : ?count:int -> Tuple.t -> t -> t

(** [of_list k assoc] builds a bag from [(tuple, multiplicity)] pairs;
    repeated tuples accumulate. *)
val of_list : int -> (Tuple.t * int) list -> t

val to_list : t -> (Tuple.t * int) list

(** [of_relation r] gives every tuple multiplicity 1. *)
val of_relation : Relation.t -> t

(** [support bag] is the set-semantics projection (all multiplicities
    collapsed to 1). *)
val support : t -> Relation.t

val union : t -> t -> t
val diff : t -> t -> t
val inter : t -> t -> t
val product : t -> t -> t
val filter : (Tuple.t -> bool) -> t -> t
val project : int list -> t -> t

(** [anti_unify_semijoin b1 b2] keeps each tuple of [b1], with its
    multiplicity, iff it unifies with no tuple of [b2]. *)
val anti_unify_semijoin : t -> t -> t

(** [apply_valuation v bag] applies [v] to every tuple; tuples that
    become equal have their multiplicities {e added up} (the standard
    bag image of a valuation, cf. [42] as discussed in Section 6). *)
val apply_valuation : Valuation.t -> t -> t

(** [apply_valuation_collapse v bag] — the alternative semantics
    Section 6 asks about: tuples that unify under the valuation are
    {e collapsed}, keeping the largest multiplicity instead of the sum
    (duplicates coming from different incomplete tuples are regarded as
    the same fact seen twice). *)
val apply_valuation_collapse : Valuation.t -> t -> t

val equal : t -> t -> bool
val fold : (Tuple.t -> int -> 'a -> 'a) -> t -> 'a -> 'a

val pp : Format.formatter -> t -> unit
