type t = Value.t array

let arity = Array.length

let compare t1 t2 =
  let n1 = Array.length t1 and n2 = Array.length t2 in
  if n1 <> n2 then Int.compare n1 n2
  else
    let rec loop i =
      if i >= n1 then 0
      else
        let c = Value.compare t1.(i) t2.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

let equal t1 t2 = compare t1 t2 = 0

let empty : t = [||]

let of_list = Array.of_list
let to_list = Array.to_list

let concat = Array.append

let project idxs t =
  let n = Array.length t in
  let pick i =
    if i < 0 || i >= n then
      invalid_arg (Printf.sprintf "Tuple.project: index %d out of bounds" i)
    else t.(i)
  in
  Array.of_list (List.map pick idxs)

(* Unification of two tuples: solve the system { t1.(i) = t2.(i) } by
   union-find on null labels, where each equivalence class may contain at
   most one constant.  Repeated nulls within either tuple are handled
   correctly because classes are shared across positions. *)
let unifiable t1 t2 =
  if Array.length t1 <> Array.length t2 then false
  else begin
    (* parent map for nulls; class representative carries an optional
       constant binding *)
    let parent : (int, int) Hashtbl.t = Hashtbl.create 8 in
    let binding : (int, Value.const) Hashtbl.t = Hashtbl.create 8 in
    let rec find x =
      match Hashtbl.find_opt parent x with
      | None -> x
      | Some p ->
        let r = find p in
        if r <> p then Hashtbl.replace parent x r;
        r
    in
    let bind_null_const n c =
      let r = find n in
      match Hashtbl.find_opt binding r with
      | None -> Hashtbl.replace binding r c; true
      | Some c' -> Value.equal_const c c'
    in
    let union n1 n2 =
      let r1 = find n1 and r2 = find n2 in
      if r1 = r2 then true
      else begin
        Hashtbl.replace parent r1 r2;
        match Hashtbl.find_opt binding r1 with
        | None -> true
        | Some c ->
          Hashtbl.remove binding r1;
          (match Hashtbl.find_opt binding r2 with
           | None -> Hashtbl.replace binding r2 c; true
           | Some c' -> Value.equal_const c c')
      end
    in
    let solve_eq v1 v2 =
      match v1, v2 with
      | Value.Const c1, Value.Const c2 -> Value.equal_const c1 c2
      | Value.Null n, Value.Const c | Value.Const c, Value.Null n ->
        bind_null_const n c
      | Value.Null n1, Value.Null n2 -> union n1 n2
    in
    let rec loop i =
      i >= Array.length t1 || (solve_eq t1.(i) t2.(i) && loop (i + 1))
    in
    loop 0
  end

let nulls t =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  Array.iter
    (function
      | Value.Null n ->
        if not (Hashtbl.mem seen n) then begin
          Hashtbl.add seen n ();
          acc := n :: !acc
        end
      | Value.Const _ -> ())
    t;
  List.rev !acc

let consts t =
  let acc = ref [] in
  Array.iter
    (function
      | Value.Const c ->
        if not (List.exists (Value.equal_const c) !acc) then acc := c :: !acc
      | Value.Null _ -> ())
    t;
  List.rev !acc

let is_complete t = Array.for_all Value.is_const t

let pp ppf t =
  Format.fprintf ppf "(@[%a@])"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Value.pp)
    (Array.to_list t)

let to_string t = Format.asprintf "%a" pp t
