(** Homomorphisms between databases (Section 4.1).

    A homomorphism from [D] to [D'] is a map [h : dom(D) → dom(D')] such
    that [h(ā) ∈ R^{D'}] for every fact [R(ā)] of [D].  The semantics of
    incompleteness can be phrased through classes of homomorphisms that
    are the identity on constants: arbitrary homomorphisms give OWA,
    strong onto homomorphisms ([h(D) = D']) give CWA, and onto
    homomorphisms ([h(dom D) = dom D']) give the intermediate semantics
    (Theorem 4.3 and the discussion around it). *)

type kind =
  | Arbitrary
  | Onto  (** h(dom D) = dom D' *)
  | Strong_onto  (** h(D) = D' *)

(** A homomorphism is represented by where it sends each null; constants
    are always fixed. *)
type t = (int * Value.t) list

(** [find ?kind ~from_ ~to_ ()] searches for a homomorphism of the given
    kind (default [Arbitrary]) from [from_] to [to_] that is the
    identity on constants, by backtracking over the nulls of [from_].
    Returns [None] if none exists.  The target may itself contain nulls
    (treated as rigid values). *)
val find : ?kind:kind -> from_:Database.t -> to_:Database.t -> unit -> t option

val exists : ?kind:kind -> from_:Database.t -> to_:Database.t -> unit -> bool

(** [apply h db] replaces each null by its image under [h] (nulls not in
    the domain of [h] are unchanged). *)
val apply : t -> Database.t -> Database.t

(** [is_homomorphism h ~from_ ~to_] checks the defining condition. *)
val is_homomorphism : t -> from_:Database.t -> to_:Database.t -> bool

(** [shrinking_endomorphism db] searches for an endomorphism of [db]
    (constants fixed) whose image has strictly fewer facts — the
    witness that [db] is not a core. *)
val shrinking_endomorphism : Database.t -> t option

(** [core db] computes the core of [db]: the ⊆-minimal retract, unique
    up to isomorphism.  Cores govern the size of certain-answer objects
    (the discussion after Theorem 3.11 hinges on "families of cores of
    graphs").  Exponential in the number of nulls; intended for small
    instances. *)
val core : Database.t -> Database.t

(** [hom_equivalent d1 d2] — homomorphisms exist in both directions
    (constants fixed): the two databases certain-answer every UCQ the
    same way under OWA. *)
val hom_equivalent : Database.t -> Database.t -> bool
