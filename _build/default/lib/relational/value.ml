type const =
  | Int of int
  | Str of string
  | Gen of int

type t =
  | Const of const
  | Null of int

let compare_const c1 c2 =
  match c1, c2 with
  | Int a, Int b -> Int.compare a b
  | Int _, (Str _ | Gen _) -> -1
  | Str _, Int _ -> 1
  | Str a, Str b -> String.compare a b
  | Str _, Gen _ -> -1
  | Gen a, Gen b -> Int.compare a b
  | Gen _, (Int _ | Str _) -> 1

let equal_const c1 c2 = compare_const c1 c2 = 0

let compare v1 v2 =
  match v1, v2 with
  | Const c1, Const c2 -> compare_const c1 c2
  | Const _, Null _ -> -1
  | Null _, Const _ -> 1
  | Null n1, Null n2 -> Int.compare n1 n2

let equal v1 v2 = compare v1 v2 = 0

let is_const = function Const _ -> true | Null _ -> false
let is_null = function Null _ -> true | Const _ -> false

let unifiable v1 v2 =
  match v1, v2 with
  | Const c1, Const c2 -> equal_const c1 c2
  | Null _, _ | _, Null _ -> true

let int i = Const (Int i)
let str s = Const (Str s)
let null i = Null i

let pp_const ppf = function
  | Int i -> Format.pp_print_int ppf i
  | Str s -> Format.pp_print_string ppf s
  | Gen i -> Format.fprintf ppf "@@%d" i

let pp ppf = function
  | Const c -> pp_const ppf c
  | Null i -> Format.fprintf ppf "_%d" i

let to_string v = Format.asprintf "%a" pp v
