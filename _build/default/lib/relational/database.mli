(** Incomplete relational databases.

    A database interprets each relation name of a {!Schema.t} as a finite
    relation over [Const ∪ Null].  The database is {e complete} when no
    null occurs (Section 2 of the paper). *)

type t

(** [create schema] is the database over [schema] with every relation
    empty. *)
val create : Schema.t -> t

val schema : t -> Schema.t

(** [relation db name] is the current instance of [name].
    @raise Not_found if [name] is not in the schema. *)
val relation : t -> string -> Relation.t

(** [set_relation db name r] replaces the instance of [name].
    @raise Not_found if [name] is not in the schema.
    @raise Invalid_argument on arity mismatch with the schema. *)
val set_relation : t -> string -> Relation.t -> t

(** [add_tuple db name t] inserts [t] into [name]. *)
val add_tuple : t -> string -> Tuple.t -> t

(** [of_list schema bindings] builds a database from
    [(relation name, tuples)] pairs; unlisted relations are empty. *)
val of_list : Schema.t -> (string * Tuple.t list) list -> t

(** [map_relations f db] applies [f] to every relation instance. *)
val map_relations : (string -> Relation.t -> Relation.t) -> t -> t

val fold : (string -> Relation.t -> 'a -> 'a) -> t -> 'a -> 'a

(** Distinct null labels occurring anywhere in the database. *)
val nulls : t -> int list

(** Distinct constants occurring anywhere in the database. *)
val consts : t -> Value.const list

(** Active domain: all constants and nulls occurring in the database. *)
val active_domain : t -> Value.t list

val is_complete : t -> bool

(** A null label strictly greater than every label in the database
    (useful for generating fresh nulls). *)
val fresh_null : t -> int

val equal : t -> t -> bool

(** Total number of tuples across all relations. *)
val size : t -> int

val pp : Format.formatter -> t -> unit
