(** Relational algebra over incomplete databases (Sections 2 and 4).

    The operations are selection σ, projection π, Cartesian product ×,
    union ∪, intersection ∩, difference −, division ÷ (needed for the
    class Pos∀G of Theorem 4.4), the unification anti-semijoin ⋉⇑̸ and
    the active-domain query Dom (both needed by the approximation
    schemes of Figure 2), plus literal relations for examples/tests. *)

type t =
  | Rel of string  (** base relation *)
  | Lit of int * Tuple.t list  (** literal relation: arity, tuples *)
  | Select of Condition.t * t  (** σ_θ *)
  | Project of int list * t  (** π over 0-based positions *)
  | Product of t * t  (** × *)
  | Union of t * t  (** ∪ *)
  | Inter of t * t  (** ∩ *)
  | Diff of t * t  (** − *)
  | Division of t * t  (** ÷ by the trailing columns *)
  | Anti_unify_join of t * t
      (** q1 ⋉⇑̸ q2: tuples of q1 unifying with no tuple of q2 *)
  | Dom of int  (** k-fold product of the active domain *)

exception Type_error of string

(** [arity schema q] computes the output arity, checking all arities and
    column references.  @raise Type_error on any inconsistency. *)
val arity : Schema.t -> t -> int

(** [well_typed schema q] is [true] iff [arity] does not raise. *)
val well_typed : Schema.t -> t -> bool

(** [relations q] lists the distinct base relation names used. *)
val relations : t -> string list

(** [consts q] lists the distinct constants mentioned in selection
    conditions and literal relations of [q]. *)
val consts : t -> Value.const list

(** [uses_dom q] holds iff [q] mentions the [Dom] operator. *)
val uses_dom : t -> bool

(** [size q] is the number of operator nodes. *)
val size : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
