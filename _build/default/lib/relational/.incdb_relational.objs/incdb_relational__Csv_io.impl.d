lib/relational/csv_io.ml: Array Buffer Database Filename Format List Printf Relation Schema String Sys Value
