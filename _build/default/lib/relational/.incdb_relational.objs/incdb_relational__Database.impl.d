lib/relational/database.ml: Format Hashtbl Int List Map Printf Relation Schema Set String Value
