lib/relational/tuple.ml: Array Format Hashtbl Int List Printf Value
