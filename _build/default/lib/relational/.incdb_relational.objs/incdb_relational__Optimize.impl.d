lib/relational/optimize.ml: Algebra Array Condition List Tuple Value
