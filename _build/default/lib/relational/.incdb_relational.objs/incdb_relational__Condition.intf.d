lib/relational/condition.mli: Format Tuple Value
