lib/relational/optimize.mli: Algebra Condition Schema
