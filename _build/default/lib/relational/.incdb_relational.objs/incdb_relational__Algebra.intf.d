lib/relational/algebra.mli: Condition Format Schema Tuple Value
