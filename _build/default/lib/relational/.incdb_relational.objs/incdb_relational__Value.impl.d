lib/relational/value.ml: Format Int String
