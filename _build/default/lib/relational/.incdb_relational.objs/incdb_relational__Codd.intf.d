lib/relational/codd.mli: Algebra Database Relation
