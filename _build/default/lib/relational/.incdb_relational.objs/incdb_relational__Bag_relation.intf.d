lib/relational/bag_relation.mli: Format Relation Tuple Valuation
