lib/relational/algebra.ml: Condition Format List Relation Schema Tuple Value
