lib/relational/homomorphism.mli: Database Value
