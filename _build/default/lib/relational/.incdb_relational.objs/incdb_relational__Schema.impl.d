lib/relational/schema.ml: Format List Printf String
