lib/relational/codd.ml: Array Database Eval Hashtbl Int List Map Relation Tuple Value
