lib/relational/condition.ml: Array Format Int List Printf Tuple Value
