lib/relational/relation.ml: Format Hashtbl Int List Printf Set Tuple Value
