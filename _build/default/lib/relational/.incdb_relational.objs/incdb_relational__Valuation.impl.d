lib/relational/valuation.ml: Array Database Format Int List Map Printf Relation Value
