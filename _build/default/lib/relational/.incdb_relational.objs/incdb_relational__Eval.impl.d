lib/relational/eval.ml: Algebra Condition Database Lazy List Relation Tuple Value
