lib/relational/bag_relation.ml: Format Int List Map Printf Relation Tuple Valuation
