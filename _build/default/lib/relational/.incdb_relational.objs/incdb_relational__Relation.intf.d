lib/relational/relation.mli: Format Set Tuple Value
