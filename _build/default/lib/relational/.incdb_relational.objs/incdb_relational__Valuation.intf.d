lib/relational/valuation.mli: Database Format Relation Tuple Value
