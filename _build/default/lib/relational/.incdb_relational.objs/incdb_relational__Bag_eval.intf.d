lib/relational/bag_eval.mli: Algebra Bag_relation Database Value
