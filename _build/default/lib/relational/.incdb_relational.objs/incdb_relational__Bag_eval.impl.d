lib/relational/bag_eval.ml: Algebra Bag_relation Condition Database Eval Lazy List Tuple
