lib/relational/eval.mli: Algebra Database Relation Value
