lib/relational/homomorphism.ml: Array Database Int List Map Relation String Tuple Value
