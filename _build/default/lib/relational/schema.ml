type relation_decl = {
  name : string;
  attributes : string list;
}

type t = relation_decl list
(* kept in declaration order; lookups are by name *)

let empty : t = []

let rec has_dup = function
  | [] -> false
  | x :: rest -> List.mem x rest || has_dup rest

let declare schema name attributes =
  if List.exists (fun d -> String.equal d.name name) schema then
    invalid_arg (Printf.sprintf "Schema.declare: %s already declared" name);
  if has_dup attributes then
    invalid_arg
      (Printf.sprintf "Schema.declare: duplicate attribute in %s" name);
  schema @ [ { name; attributes } ]

let of_list decls =
  List.fold_left (fun s (name, attrs) -> declare s name attrs) empty decls

let find schema name =
  List.find (fun d -> String.equal d.name name) schema

let mem schema name =
  List.exists (fun d -> String.equal d.name name) schema

let arity schema name = List.length (find schema name).attributes

let attributes schema name = (find schema name).attributes

let attribute_index schema rel attr =
  let attrs = attributes schema rel in
  let rec loop i = function
    | [] -> raise Not_found
    | a :: rest -> if String.equal a attr then i else loop (i + 1) rest
  in
  loop 0 attrs

let relations schema = schema

let pp ppf schema =
  let pp_decl ppf d =
    Format.fprintf ppf "%s(%a)" d.name
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
         Format.pp_print_string)
      d.attributes
  in
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
    pp_decl ppf schema
