(** Relational schemas: relation names with arities and attribute names.

    The algebra ({!Algebra}) addresses columns positionally; attribute
    names are carried so that front ends (the mini SQL layer, printers)
    can resolve names to positions. *)

type relation_decl = {
  name : string;
  attributes : string list;  (** attribute names; length = arity *)
}

type t

val empty : t

(** [declare schema name attributes] adds a relation declaration.
    @raise Invalid_argument if [name] is already declared or an
    attribute name repeats. *)
val declare : t -> string -> string list -> t

val of_list : (string * string list) list -> t

val mem : t -> string -> bool

(** @raise Not_found if the relation is not declared. *)
val arity : t -> string -> int

(** @raise Not_found if the relation is not declared. *)
val attributes : t -> string -> string list

(** [attribute_index schema rel attr] is the 0-based position of [attr]
    in [rel].  @raise Not_found if either is unknown. *)
val attribute_index : t -> string -> string -> int

val relations : t -> relation_decl list

val pp : Format.formatter -> t -> unit
