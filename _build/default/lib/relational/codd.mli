(** Codd nulls and the codd transformation (Section 6, "Marked nulls").

    SQL has a single placeholder NULL; the standard reading interprets
    each occurrence as a {e distinct} marked null — a Codd null.  The
    paper asks when interpreting SQL nulls as Codd nulls before or
    after query evaluation makes no difference, i.e. when

    Q(codd(D)) = codd(Q(D))   up to renaming of nulls,

    and notes that this fails in general and that the class of queries
    with the property is not syntactic.  This module provides the
    transformation and the (decidable, instance-level) invariance
    check. *)

(** [is_codd db] holds iff no null label occurs more than once in the
    database — the Codd interpretation of SQL nulls. *)
val is_codd : Database.t -> bool

(** [coddify db] replaces every {e occurrence} of a null by a fresh
    null, so repeated marks are torn apart; fresh labels start above
    every label in [db].  The result satisfies {!is_codd}. *)
val coddify : Database.t -> Database.t

(** [coddify_relation ~next_label r] — the same on a single relation,
    threading the fresh-label counter. *)
val coddify_relation : next_label:int ref -> Relation.t -> Relation.t

(** [equal_up_to_renaming r1 r2] holds iff some bijection between the
    null labels of [r1] and [r2] maps [r1] onto [r2] (constants fixed).
    Decided by backtracking; intended for small results in tests and
    experiments. *)
val equal_up_to_renaming : Relation.t -> Relation.t -> bool

(** [invariant_on db q] checks the instance-level Codd-invariance of
    naive evaluation: Qnaive(codd(D)) = codd-renaming-equal to
    Qnaive(D) after tearing answer nulls apart occurrence-wise.
    Queries that merely copy nulls around (e.g. projections of base
    relations) are invariant; queries that compare nulls (σ_{A=B} on a
    tuple (⊥,⊥)) are not. *)
val invariant_on : Database.t -> Algebra.t -> bool
