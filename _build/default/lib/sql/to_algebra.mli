(** Translation of the mini-SQL fragment to relational algebra, so that
    SQL queries can be fed to the certain-answer machinery (exact
    certainty, the approximation schemes of Figure 2, naive
    evaluation).

    The translation produces the {e two-valued specification} of the
    query — the standard Boolean FO semantics on each possible world —
    which is the correctness reference of the paper: the translated
    query under {!Incdb_relational.Eval} on a complete database agrees
    with SQL; on incomplete databases SQL's 3VL evaluation
    ({!Three_valued}) may differ from every sound approximation of the
    translation, which is exactly the paper's point.

    Supported shape: subquery predicates — (NOT) IN and (NOT) EXISTS,
    possibly correlated with the immediately enclosing query — must
    appear as top-level conjuncts of WHERE, and the subqueries
    themselves must be subquery-free.  Everything else (equalities,
    disequalities, IS (NOT) NULL, AND/OR/NOT of those) translates to
    selection conditions. *)

exception Unsupported of string

(** [translate schema q] — @raise Unsupported on queries outside the
    fragment, [Sql_error]-style failures are reported as [Unsupported]
    too. *)
val translate : Schema.t -> Ast.query -> Algebra.t

(** [translate_string schema sql] parses then translates. *)
val translate_string : Schema.t -> string -> Algebra.t
