(** SQL-faithful evaluation of the mini-SQL fragment under Kleene's
    three-valued logic (Sections 1 and 5).

    Comparisons involving [NULL] (our nulls) evaluate to u, including
    [NULL = NULL]; [IS NULL] is two-valued; [IN] is the Kleene
    disjunction of the comparisons with the subquery's rows; [EXISTS]
    is two-valued on the subquery's kept rows.  A row is returned iff
    its WHERE clause evaluates to t — SQL's collapse of u to f, i.e.
    the assertion operator ↑ of Section 5.2 applied at each WHERE.

    Marked nulls are honoured: the same null compares u even to itself
    (SQL semantics); use {!Incdb_certain} to get certain answers
    instead.  Results are sets (duplicates eliminated). *)

exception Sql_error of string

(** Scopes for correlated subqueries: innermost first. *)
type env = (string * (string list * Tuple.t)) list

(** [eval db q] evaluates a parsed query on the database, resolving
    table names against the schema.
    @raise Sql_error on unknown tables/columns or ambiguous column
    references. *)
val eval : Database.t -> Ast.query -> Relation.t

(** [eval_in_env db env q] evaluates with outer scopes visible
    (correlated subqueries). *)
val eval_in_env : Database.t -> env -> Ast.query -> Relation.t

(** [eval_predicate db env p] is the Kleene truth value of [p]. *)
val eval_predicate : Database.t -> env -> Ast.predicate -> Kleene.t

(** [run db sql] parses and evaluates. *)
val run : Database.t -> string -> Relation.t
