type expr =
  | Col of string option * string
  | Lit of Value.const

type cmp =
  | Ceq
  | Cneq
  | Clt
  | Cle
  | Cgt
  | Cge

type predicate =
  | Cmp of cmp * expr * expr
  | Is_null of expr
  | Is_not_null of expr
  | In of expr * query
  | Not_in of expr * query
  | In_list of expr * Value.const list
  | Not_in_list of expr * Value.const list
  | Exists of query
  | Not_exists of query
  | And of predicate * predicate
  | Or of predicate * predicate
  | Not of predicate

and select_item =
  | Star
  | Field of expr

and select_query = {
  select : select_item list;
  from : (string * string) list;
  where : predicate option;
}

and query =
  | Simple of select_query
  | Union of query * query

let pp_expr ppf = function
  | Col (None, c) -> Format.pp_print_string ppf c
  | Col (Some t, c) -> Format.fprintf ppf "%s.%s" t c
  | Lit (Value.Str s) -> Format.fprintf ppf "'%s'" s
  | Lit c -> Value.pp_const ppf c

let pp_const_list ppf cs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
    (fun ppf c ->
      match c with
      | Value.Str s -> Format.fprintf ppf "'%s'" s
      | c -> Value.pp_const ppf c)
    ppf cs

let rec pp_predicate ppf = function
  | Cmp (Ceq, e1, e2) -> Format.fprintf ppf "%a = %a" pp_expr e1 pp_expr e2
  | Cmp (Cneq, e1, e2) -> Format.fprintf ppf "%a <> %a" pp_expr e1 pp_expr e2
  | Cmp (Clt, e1, e2) -> Format.fprintf ppf "%a < %a" pp_expr e1 pp_expr e2
  | Cmp (Cle, e1, e2) -> Format.fprintf ppf "%a <= %a" pp_expr e1 pp_expr e2
  | Cmp (Cgt, e1, e2) -> Format.fprintf ppf "%a > %a" pp_expr e1 pp_expr e2
  | Cmp (Cge, e1, e2) -> Format.fprintf ppf "%a >= %a" pp_expr e1 pp_expr e2
  | Is_null e -> Format.fprintf ppf "%a IS NULL" pp_expr e
  | Is_not_null e -> Format.fprintf ppf "%a IS NOT NULL" pp_expr e
  | In (e, q) -> Format.fprintf ppf "%a IN (%a)" pp_expr e pp_query q
  | Not_in (e, q) -> Format.fprintf ppf "%a NOT IN (%a)" pp_expr e pp_query q
  | In_list (e, cs) ->
    Format.fprintf ppf "%a IN (%a)" pp_expr e pp_const_list cs
  | Not_in_list (e, cs) ->
    Format.fprintf ppf "%a NOT IN (%a)" pp_expr e pp_const_list cs
  | Exists q -> Format.fprintf ppf "EXISTS (%a)" pp_query q
  | Not_exists q -> Format.fprintf ppf "NOT EXISTS (%a)" pp_query q
  | And (p1, p2) ->
    Format.fprintf ppf "(%a AND %a)" pp_predicate p1 pp_predicate p2
  | Or (p1, p2) ->
    Format.fprintf ppf "(%a OR %a)" pp_predicate p1 pp_predicate p2
  | Not p -> Format.fprintf ppf "NOT (%a)" pp_predicate p

and pp_select ppf q =
  let pp_item ppf = function
    | Star -> Format.pp_print_char ppf '*'
    | Field e -> pp_expr ppf e
  in
  let pp_from ppf (table, alias) =
    if String.equal table alias then Format.pp_print_string ppf table
    else Format.fprintf ppf "%s %s" table alias
  in
  Format.fprintf ppf "SELECT %a FROM %a"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       pp_item)
    q.select
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       pp_from)
    q.from;
  match q.where with
  | None -> ()
  | Some p -> Format.fprintf ppf " WHERE %a" pp_predicate p

and pp_query ppf = function
  | Simple q -> pp_select ppf q
  | Union (q1, q2) ->
    Format.fprintf ppf "%a UNION %a" pp_query q1 pp_query q2
