exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

(* a scope entry: alias, attribute names, offset of the alias's columns
   in the combined tuple layout *)
type scope = (string * (string list * int)) list

let scope_of_from schema ~offset from : scope * int =
  List.fold_left
    (fun (env, ofs) (table, alias) ->
      if not (Schema.mem schema table) then
        unsupported "unknown table %s" table;
      let attrs = Schema.attributes schema table in
      if List.mem_assoc alias env then unsupported "duplicate alias %s" alias;
      (env @ [ (alias, (attrs, ofs)) ], ofs + List.length attrs))
    ([], offset) from

(* SQL scoping: an unqualified column resolves in the innermost scope
   level that declares it; ambiguity is an error only within a level *)
let resolve (levels : scope list) alias_opt column =
  match alias_opt with
  | Some alias ->
    (match
       List.find_map (fun level -> List.assoc_opt alias level) levels
     with
     | None -> unsupported "unknown alias %s" alias
     | Some (attrs, ofs) ->
       (match List.find_index (String.equal column) attrs with
        | Some i -> ofs + i
        | None -> unsupported "no column %s in %s" column alias))
  | None ->
    let rec search = function
      | [] -> unsupported "unknown column %s" column
      | level :: outer ->
        let hits =
          List.filter_map
            (fun (_, (attrs, ofs)) ->
              match List.find_index (String.equal column) attrs with
              | Some i -> Some (ofs + i)
              | None -> None)
            level
        in
        (match hits with
         | [ i ] -> i
         | [] -> search outer
         | _ -> unsupported "ambiguous column %s" column)
    in
    search levels

let operand levels = function
  | Ast.Col (alias, column) -> Condition.Col (resolve levels alias column)
  | Ast.Lit c -> Condition.Lit c

(* simple predicates (no subqueries) to selection conditions *)
let rec condition levels = function
  | Ast.Cmp (Ast.Ceq, e1, e2) ->
    Condition.Eq (operand levels e1, operand levels e2)
  | Ast.Cmp (Ast.Cneq, e1, e2) ->
    Condition.Neq (operand levels e1, operand levels e2)
  | Ast.Cmp (Ast.Clt, e1, e2) ->
    Condition.Lt (operand levels e1, operand levels e2)
  | Ast.Cmp (Ast.Cle, e1, e2) ->
    Condition.Le (operand levels e1, operand levels e2)
  | Ast.Cmp (Ast.Cgt, e1, e2) ->
    Condition.Lt (operand levels e2, operand levels e1)
  | Ast.Cmp (Ast.Cge, e1, e2) ->
    Condition.Le (operand levels e2, operand levels e1)
  | Ast.Is_null e ->
    (match operand levels e with
     | Condition.Col i -> Condition.Is_null i
     | Condition.Lit _ -> Condition.False)
  | Ast.Is_not_null e ->
    (match operand levels e with
     | Condition.Col i -> Condition.Is_const i
     | Condition.Lit _ -> Condition.True)
  | Ast.And (p1, p2) -> Condition.And (condition levels p1, condition levels p2)
  | Ast.Or (p1, p2) -> Condition.Or (condition levels p1, condition levels p2)
  | Ast.Not p -> Condition.negate (condition levels p)
  | Ast.In_list (e, consts) ->
    let op = operand levels e in
    List.fold_left
      (fun acc c -> Condition.Or (acc, Condition.Eq (op, Condition.Lit c)))
      Condition.False consts
  | Ast.Not_in_list (e, consts) ->
    let op = operand levels e in
    List.fold_left
      (fun acc c -> Condition.And (acc, Condition.Neq (op, Condition.Lit c)))
      Condition.True consts
  | Ast.In _ | Ast.Not_in _ | Ast.Exists _ | Ast.Not_exists _ ->
    unsupported "subqueries must be top-level WHERE conjuncts"

let rec conjuncts = function
  | Ast.And (p1, p2) -> conjuncts p1 @ conjuncts p2
  | p -> [ p ]

(* ensure a subquery has no nested subqueries *)
let rec predicate_is_simple = function
  | Ast.Cmp _ | Ast.Is_null _ | Ast.Is_not_null _ | Ast.In_list _
  | Ast.Not_in_list _ ->
    true
  | Ast.And (p1, p2) | Ast.Or (p1, p2) ->
    predicate_is_simple p1 && predicate_is_simple p2
  | Ast.Not p -> predicate_is_simple p
  | Ast.In _ | Ast.Not_in _ | Ast.Exists _ | Ast.Not_exists _ -> false

let rec translate schema (q : Ast.query) =
  match q with
  | Ast.Union (q1, q2) ->
    Algebra.Union (translate schema q1, translate schema q2)
  | Ast.Simple q -> translate_select schema q

and translate_select schema (q : Ast.select_query) =
  let env, width = scope_of_from schema ~offset:0 q.from in
  let from_product =
    match List.map (fun (t, _) -> Algebra.Rel t) q.from with
    | [] -> unsupported "empty FROM"
    | first :: rest ->
      List.fold_left (fun acc r -> Algebra.Product (acc, r)) first rest
  in
  let outer_cols = List.init width (fun i -> i) in
  (* a semijoin/antijoin step for a subquery conjunct; UNION subqueries
     distribute over the matching construction *)
  let rec subquery_step plan ~anti ~extra_eq (sub : Ast.query) =
    match sub with
    | Ast.Union (s1, s2) ->
      let m1 = subquery_step plan ~anti:false ~extra_eq s1 in
      let m2 = subquery_step plan ~anti:false ~extra_eq s2 in
      let matched = Algebra.Union (m1, m2) in
      if anti then Algebra.Diff (plan, matched) else matched
    | Ast.Simple sub ->
      begin
      (match sub.where with
       | Some p when not (predicate_is_simple p) ->
         unsupported "nested subqueries are not supported"
       | _ -> ());
    let sub_env, _ = scope_of_from schema ~offset:width sub.from in
    (* inner scope first, outer scope as fallback *)
    let combined = [ sub_env; env ] in
    let sub_from =
      match List.map (fun (t, _) -> Algebra.Rel t) sub.from with
      | [] -> unsupported "empty FROM in subquery"
      | first :: rest ->
        List.fold_left (fun acc r -> Algebra.Product (acc, r)) first rest
    in
    let conds =
      (match sub.where with
       | None -> []
       | Some p -> [ condition combined p ])
      @
      match extra_eq with
      | None -> []
      | Some outer_expr ->
        (* the IN equality: outer expression = the subquery's selected
           column *)
        let sub_col =
          match sub.select with
          | [ Ast.Field e ] -> operand combined e
          | [ Ast.Star ] | _ ->
            unsupported "IN subquery must select exactly one column"
        in
        [ Condition.Eq (operand [ env ] outer_expr, sub_col) ]
    in
    let cond =
      match conds with
      | [] -> Condition.True
      | c :: cs -> List.fold_left (fun a b -> Condition.And (a, b)) c cs
    in
    let matched =
      Algebra.Project
        (outer_cols, Algebra.Select (cond, Algebra.Product (plan, sub_from)))
    in
      if anti then Algebra.Diff (plan, matched) else matched
      end
  in
  let plan =
    match q.where with
    | None -> from_product
    | Some where ->
      let simple, complex =
        List.partition predicate_is_simple (conjuncts where)
      in
      let plan =
        match simple with
        | [] -> from_product
        | c :: cs ->
          let cond =
            List.fold_left
              (fun a p -> Condition.And (a, condition [ env ] p))
              (condition [ env ] c) cs
          in
          Algebra.Select (cond, from_product)
      in
      List.fold_left
        (fun plan p ->
          match p with
          | Ast.Exists sub -> subquery_step plan ~anti:false ~extra_eq:None sub
          | Ast.Not_exists sub ->
            subquery_step plan ~anti:true ~extra_eq:None sub
          | Ast.In (e, sub) ->
            subquery_step plan ~anti:false ~extra_eq:(Some e) sub
          | Ast.Not_in (e, sub) ->
            subquery_step plan ~anti:true ~extra_eq:(Some e) sub
          | Ast.Not _ ->
            unsupported
              "negation over subqueries must use NOT IN / NOT EXISTS"
          | Ast.Cmp _ | Ast.Is_null _ | Ast.Is_not_null _ | Ast.And _
          | Ast.Or _ | Ast.In_list _ | Ast.Not_in_list _ ->
            (* simple predicates were filtered into [simple] *)
            assert false)
        plan complex
  in
  match q.select with
  | [ Ast.Star ] -> plan
  | items ->
    let idxs =
      List.map
        (function
          | Ast.Star -> unsupported "* must be the only select item"
          | Ast.Field (Ast.Col (alias, column)) -> resolve [ env ] alias column
          | Ast.Field (Ast.Lit _) ->
            unsupported "constants in SELECT are not supported")
        items
    in
    Algebra.Project (idxs, plan)

let translate_string schema sql = translate schema (Parser.parse sql)
