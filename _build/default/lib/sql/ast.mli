(** Abstract syntax for the SQL fragment of the paper's examples:
    SELECT–FROM–WHERE blocks combined with UNION, with (NOT) IN over
    subqueries or literal lists, (NOT) EXISTS, IS (NOT) NULL, and the
    Boolean connectives.  Set semantics throughout (SELECT DISTINCT is
    accepted and is the default behaviour; bag behaviour is exercised
    through {!Incdb_relational.Bag_eval} directly). *)

type expr =
  | Col of string option * string  (** optional table alias, column *)
  | Lit of Value.const

type cmp =
  | Ceq
  | Cneq
  | Clt
  | Cle
  | Cgt
  | Cge

type predicate =
  | Cmp of cmp * expr * expr
  | Is_null of expr
  | Is_not_null of expr
  | In of expr * query  (** e IN (subquery) *)
  | Not_in of expr * query
  | In_list of expr * Value.const list  (** e IN (c1, c2, …) *)
  | Not_in_list of expr * Value.const list
  | Exists of query
  | Not_exists of query
  | And of predicate * predicate
  | Or of predicate * predicate
  | Not of predicate

and select_item =
  | Star
  | Field of expr

and select_query = {
  select : select_item list;
  from : (string * string) list;  (** (table, alias); alias = table when absent *)
  where : predicate option;
}

(** A query is a UNION tree of SELECT blocks. *)
and query =
  | Simple of select_query
  | Union of query * query

val pp_expr : Format.formatter -> expr -> unit
val pp_predicate : Format.formatter -> predicate -> unit
val pp_query : Format.formatter -> query -> unit
