lib/sql/ast.mli: Format Value
