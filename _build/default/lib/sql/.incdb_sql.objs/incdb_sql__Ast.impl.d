lib/sql/ast.ml: Format String Value
