lib/sql/lexer.ml: Format List String
