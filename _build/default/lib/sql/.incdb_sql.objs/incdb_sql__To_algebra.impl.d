lib/sql/to_algebra.ml: Algebra Ast Condition Format List Parser Schema String
