lib/sql/to_algebra.mli: Algebra Ast Schema
