lib/sql/three_valued.mli: Ast Database Kleene Relation Tuple
