lib/sql/three_valued.ml: Array Ast Database Format Kleene List Parser Relation Schema String Tuple Value
