(** Recursive-descent parser for the mini-SQL fragment.

    Grammar (keywords case-insensitive):

    {v
    query  ::= select (UNION select)*
    select ::= SELECT [DISTINCT] items FROM tables [WHERE pred]
    items  ::= '*' | expr (',' expr)*
    tables ::= table (',' table)*        table ::= ident [ident]
    pred   ::= conj (OR conj)*
    conj   ::= unary (AND unary)*
    unary  ::= NOT unary | EXISTS '(' query ')' | '(' pred ')' | atom
    atom   ::= expr ('=' | '<>' | '!=') expr
             | expr IS [NOT] NULL
             | expr [NOT] IN '(' query ')'
             | expr [NOT] IN '(' literal (',' literal)* ')'
    expr   ::= ident | ident '.' ident | int | 'string'
    v} *)

exception Parse_error of string

(** [parse input] parses a complete query.
    @raise Parse_error on syntax errors (including trailing input).
    @raise Lexer.Lex_error on lexical errors. *)
val parse : string -> Ast.query

(** [parse_predicate input] parses a stand-alone predicate (testing). *)
val parse_predicate : string -> Ast.predicate
