exception Sql_error of string

let sql_error fmt = Format.kasprintf (fun s -> raise (Sql_error s)) fmt

type env = (string * (string list * Tuple.t)) list

let resolve_column env alias_opt column =
  match alias_opt with
  | Some alias ->
    (match List.assoc_opt alias env with
     | None -> sql_error "unknown table alias %s" alias
     | Some (attrs, tuple) ->
       (match List.find_index (String.equal column) attrs with
        | Some i -> tuple.(i)
        | None -> sql_error "no column %s in %s" column alias))
  | None ->
    let hits =
      List.filter_map
        (fun (_, (attrs, tuple)) ->
          match List.find_index (String.equal column) attrs with
          | Some i -> Some tuple.(i)
          | None -> None)
        env
    in
    (match hits with
     | [ v ] -> v
     | [] -> sql_error "unknown column %s" column
     | v :: _ ->
       (* innermost scope wins when the same name appears at several
          depths; ambiguity within one scope is not distinguished here *)
       v)

let expr_value env = function
  | Ast.Col (alias, column) -> resolve_column env alias column
  | Ast.Lit c -> Value.Const c

(* SQL comparison: u as soon as a null is involved; order comparisons
   follow the total order of Value.compare on constants *)
let sql_compare op v1 v2 =
  if Value.is_null v1 || Value.is_null v2 then Kleene.U
  else
    let c = Value.compare v1 v2 in
    match op with
    | Ast.Ceq -> Kleene.of_bool (c = 0)
    | Ast.Cneq -> Kleene.of_bool (c <> 0)
    | Ast.Clt -> Kleene.of_bool (c < 0)
    | Ast.Cle -> Kleene.of_bool (c <= 0)
    | Ast.Cgt -> Kleene.of_bool (c > 0)
    | Ast.Cge -> Kleene.of_bool (c >= 0)

let rec eval_predicate db env = function
  | Ast.Cmp (op, e1, e2) ->
    sql_compare op (expr_value env e1) (expr_value env e2)
  | Ast.Is_null e -> Kleene.of_bool (Value.is_null (expr_value env e))
  | Ast.Is_not_null e -> Kleene.of_bool (Value.is_const (expr_value env e))
  | Ast.In (e, sub) ->
    let x = expr_value env e in
    let rows = eval_in_env db env sub in
    if Relation.arity rows <> 1 then
      sql_error "IN subquery must return one column";
    Relation.fold
      (fun row acc -> Kleene.disj acc (sql_compare Ast.Ceq x row.(0)))
      rows Kleene.F
  | Ast.Not_in (e, sub) ->
    Kleene.neg (eval_predicate db env (Ast.In (e, sub)))
  | Ast.In_list (e, consts) ->
    let x = expr_value env e in
    List.fold_left
      (fun acc c -> Kleene.disj acc (sql_compare Ast.Ceq x (Value.Const c)))
      Kleene.F consts
  | Ast.Not_in_list (e, consts) ->
    Kleene.neg (eval_predicate db env (Ast.In_list (e, consts)))
  | Ast.Exists sub ->
    Kleene.of_bool (not (Relation.is_empty (eval_in_env db env sub)))
  | Ast.Not_exists sub ->
    Kleene.of_bool (Relation.is_empty (eval_in_env db env sub))
  | Ast.And (p1, p2) ->
    (match eval_predicate db env p1 with
     | Kleene.F -> Kleene.F
     | v -> Kleene.conj v (eval_predicate db env p2))
  | Ast.Or (p1, p2) ->
    (match eval_predicate db env p1 with
     | Kleene.T -> Kleene.T
     | v -> Kleene.disj v (eval_predicate db env p2))
  | Ast.Not p -> Kleene.neg (eval_predicate db env p)

and eval_in_env db outer_env (q : Ast.query) =
  match q with
  | Ast.Union (q1, q2) ->
    Relation.union (eval_in_env db outer_env q1) (eval_in_env db outer_env q2)
  | Ast.Simple q -> eval_select db outer_env q

and eval_select db outer_env (q : Ast.select_query) =
  let schema = Database.schema db in
  let sources =
    List.map
      (fun (table, alias) ->
        if not (Schema.mem schema table) then
          sql_error "unknown table %s" table;
        (alias, Schema.attributes schema table, Database.relation db table))
      q.from
  in
  (* enumerate the Cartesian product of the FROM sources *)
  let rec rows bound = function
    | [] -> [ List.rev bound ]
    | (alias, attrs, rel) :: rest ->
      List.concat_map
        (fun t -> rows ((alias, (attrs, t)) :: bound) rest)
        (Relation.to_list rel)
  in
  let all_rows = rows [] sources in
  let select_values frame =
    match q.select with
    | [ Ast.Star ] ->
      List.concat_map
        (fun (_, (_, tuple)) -> Array.to_list tuple)
        frame
    | items ->
      List.map
        (function
          | Ast.Star -> sql_error "* must be the only select item"
          | Ast.Field e -> expr_value (frame @ outer_env) e)
        items
  in
  let out_arity =
    match all_rows with
    | frame :: _ -> List.length (select_values frame)
    | [] ->
      (* empty product: compute arity from the schema *)
      (match q.select with
       | [ Ast.Star ] ->
         List.fold_left (fun acc (_, attrs, _) -> acc + List.length attrs) 0
           sources
       | items -> List.length items)
  in
  List.fold_left
    (fun acc frame ->
      let env = frame @ outer_env in
      let keep =
        match q.where with
        | None -> true
        | Some p -> eval_predicate db env p = Kleene.T
      in
      if keep then Relation.add (Tuple.of_list (select_values frame)) acc
      else acc)
    (Relation.empty out_arity) all_rows

let eval db q = eval_in_env db [] q

let run db sql = eval db (Parser.parse sql)
