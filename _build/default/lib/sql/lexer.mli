(** Tokeniser for the mini-SQL fragment. *)

type token =
  | SELECT
  | FROM
  | WHERE
  | AND
  | OR
  | NOT
  | IN
  | EXISTS
  | IS
  | NULL
  | UNION
  | DISTINCT
  | IDENT of string  (** bare identifier, lower-cased keywords excluded *)
  | QUALIFIED of string * string  (** t.c *)
  | INT of int
  | STRING of string  (** 'literal' *)
  | STAR
  | COMMA
  | LPAREN
  | RPAREN
  | EQ  (** = *)
  | NEQ  (** <> or != *)
  | LT  (** < *)
  | LE  (** <= *)
  | GT  (** > *)
  | GE  (** >= *)
  | EOF

exception Lex_error of string

(** [tokenize input] — keywords are case-insensitive; identifiers keep
    their case.  @raise Lex_error on illegal characters or unterminated
    strings. *)
val tokenize : string -> token list

val pp_token : Format.formatter -> token -> unit
