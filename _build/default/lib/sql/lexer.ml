type token =
  | SELECT
  | FROM
  | WHERE
  | AND
  | OR
  | NOT
  | IN
  | EXISTS
  | IS
  | NULL
  | UNION
  | DISTINCT
  | IDENT of string
  | QUALIFIED of string * string
  | INT of int
  | STRING of string
  | STAR
  | COMMA
  | LPAREN
  | RPAREN
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | EOF

exception Lex_error of string

let lex_error fmt = Format.kasprintf (fun s -> raise (Lex_error s)) fmt

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let keyword_of_string s =
  match String.lowercase_ascii s with
  | "select" -> Some SELECT
  | "from" -> Some FROM
  | "where" -> Some WHERE
  | "and" -> Some AND
  | "or" -> Some OR
  | "not" -> Some NOT
  | "in" -> Some IN
  | "exists" -> Some EXISTS
  | "is" -> Some IS
  | "null" -> Some NULL
  | "union" -> Some UNION
  | "distinct" -> Some DISTINCT
  | _ -> None

let tokenize input =
  let n = String.length input in
  let rec scan pos acc =
    if pos >= n then List.rev (EOF :: acc)
    else
      let c = input.[pos] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then scan (pos + 1) acc
      else if c = '*' then scan (pos + 1) (STAR :: acc)
      else if c = ',' then scan (pos + 1) (COMMA :: acc)
      else if c = '(' then scan (pos + 1) (LPAREN :: acc)
      else if c = ')' then scan (pos + 1) (RPAREN :: acc)
      else if c = '=' then scan (pos + 1) (EQ :: acc)
      else if c = '<' then
        if pos + 1 < n && input.[pos + 1] = '>' then scan (pos + 2) (NEQ :: acc)
        else if pos + 1 < n && input.[pos + 1] = '=' then
          scan (pos + 2) (LE :: acc)
        else scan (pos + 1) (LT :: acc)
      else if c = '>' then
        if pos + 1 < n && input.[pos + 1] = '=' then scan (pos + 2) (GE :: acc)
        else scan (pos + 1) (GT :: acc)
      else if c = '!' then
        if pos + 1 < n && input.[pos + 1] = '=' then scan (pos + 2) (NEQ :: acc)
        else lex_error "unexpected '!' at offset %d" pos
      else if c = '\'' then begin
        let rec find_end i =
          if i >= n then lex_error "unterminated string at offset %d" pos
          else if input.[i] = '\'' then i
          else find_end (i + 1)
        in
        let close = find_end (pos + 1) in
        let s = String.sub input (pos + 1) (close - pos - 1) in
        scan (close + 1) (STRING s :: acc)
      end
      else if is_digit c then begin
        let rec find_end i =
          if i < n && is_digit input.[i] then find_end (i + 1) else i
        in
        let stop = find_end pos in
        scan stop (INT (int_of_string (String.sub input pos (stop - pos))) :: acc)
      end
      else if is_ident_start c then begin
        let rec find_end i =
          if i < n && is_ident_char input.[i] then find_end (i + 1) else i
        in
        let stop = find_end pos in
        let word = String.sub input pos (stop - pos) in
        match keyword_of_string word with
        | Some kw -> scan stop (kw :: acc)
        | None ->
          if stop < n && input.[stop] = '.' then begin
            let start2 = stop + 1 in
            if start2 < n && is_ident_start input.[start2] then begin
              let rec find_end2 i =
                if i < n && is_ident_char input.[i] then find_end2 (i + 1)
                else i
              in
              let stop2 = find_end2 start2 in
              let col = String.sub input start2 (stop2 - start2) in
              scan stop2 (QUALIFIED (word, col) :: acc)
            end
            else lex_error "expected column after '%s.'" word
          end
          else scan stop (IDENT word :: acc)
      end
      else lex_error "illegal character %C at offset %d" c pos
  in
  scan 0 []

let pp_token ppf = function
  | SELECT -> Format.pp_print_string ppf "SELECT"
  | FROM -> Format.pp_print_string ppf "FROM"
  | WHERE -> Format.pp_print_string ppf "WHERE"
  | AND -> Format.pp_print_string ppf "AND"
  | OR -> Format.pp_print_string ppf "OR"
  | NOT -> Format.pp_print_string ppf "NOT"
  | IN -> Format.pp_print_string ppf "IN"
  | EXISTS -> Format.pp_print_string ppf "EXISTS"
  | IS -> Format.pp_print_string ppf "IS"
  | NULL -> Format.pp_print_string ppf "NULL"
  | UNION -> Format.pp_print_string ppf "UNION"
  | DISTINCT -> Format.pp_print_string ppf "DISTINCT"
  | IDENT s -> Format.fprintf ppf "ident(%s)" s
  | QUALIFIED (t, c) -> Format.fprintf ppf "ident(%s.%s)" t c
  | INT n -> Format.pp_print_int ppf n
  | STRING s -> Format.fprintf ppf "'%s'" s
  | STAR -> Format.pp_print_char ppf '*'
  | COMMA -> Format.pp_print_char ppf ','
  | LPAREN -> Format.pp_print_char ppf '('
  | RPAREN -> Format.pp_print_char ppf ')'
  | EQ -> Format.pp_print_char ppf '='
  | NEQ -> Format.pp_print_string ppf "<>"
  | LT -> Format.pp_print_char ppf '<'
  | LE -> Format.pp_print_string ppf "<="
  | GT -> Format.pp_print_char ppf '>'
  | GE -> Format.pp_print_string ppf ">="
  | EOF -> Format.pp_print_string ppf "<eof>"
