exception Parse_error of string

let parse_error fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

type state = {
  mutable tokens : Lexer.token list;
}

let peek st =
  match st.tokens with
  | [] -> Lexer.EOF
  | t :: _ -> t

let advance st =
  match st.tokens with
  | [] -> ()
  | _ :: rest -> st.tokens <- rest

let expect st token =
  if peek st = token then advance st
  else
    parse_error "expected %a but found %a" Lexer.pp_token token Lexer.pp_token
      (peek st)

let parse_expr st =
  match peek st with
  | Lexer.IDENT c ->
    advance st;
    Ast.Col (None, c)
  | Lexer.QUALIFIED (t, c) ->
    advance st;
    Ast.Col (Some t, c)
  | Lexer.INT n ->
    advance st;
    Ast.Lit (Value.Int n)
  | Lexer.STRING s ->
    advance st;
    Ast.Lit (Value.Str s)
  | t -> parse_error "expected expression, found %a" Lexer.pp_token t

let parse_const st =
  match peek st with
  | Lexer.INT n ->
    advance st;
    Value.Int n
  | Lexer.STRING s ->
    advance st;
    Value.Str s
  | t -> parse_error "expected a literal, found %a" Lexer.pp_token t

let rec parse_query st =
  let first = Ast.Simple (parse_select st) in
  let rec unions acc =
    if peek st = Lexer.UNION then begin
      advance st;
      unions (Ast.Union (acc, Ast.Simple (parse_select st)))
    end
    else acc
  in
  unions first

and parse_select st =
  expect st Lexer.SELECT;
  (* DISTINCT is accepted and vacuous: everything is set semantics *)
  if peek st = Lexer.DISTINCT then advance st;
  let select =
    match peek st with
    | Lexer.STAR ->
      advance st;
      [ Ast.Star ]
    | _ ->
      let rec items acc =
        let e = parse_expr st in
        if peek st = Lexer.COMMA then begin
          advance st;
          items (Ast.Field e :: acc)
        end
        else List.rev (Ast.Field e :: acc)
      in
      items []
  in
  expect st Lexer.FROM;
  let rec tables acc =
    match peek st with
    | Lexer.IDENT t ->
      advance st;
      let alias =
        match peek st with
        | Lexer.IDENT a ->
          advance st;
          a
        | _ -> t
      in
      if peek st = Lexer.COMMA then begin
        advance st;
        tables ((t, alias) :: acc)
      end
      else List.rev ((t, alias) :: acc)
    | tok -> parse_error "expected table name, found %a" Lexer.pp_token tok
  in
  let from = tables [] in
  let where =
    if peek st = Lexer.WHERE then begin
      advance st;
      Some (parse_pred st)
    end
    else None
  in
  { Ast.select; from; where }

and parse_pred st =
  let left = parse_conj st in
  if peek st = Lexer.OR then begin
    advance st;
    Ast.Or (left, parse_pred st)
  end
  else left

and parse_conj st =
  let left = parse_unary st in
  if peek st = Lexer.AND then begin
    advance st;
    Ast.And (left, parse_conj st)
  end
  else left

and parse_unary st =
  match peek st with
  | Lexer.NOT ->
    advance st;
    (match parse_unary st with
     | Ast.Exists q -> Ast.Not_exists q
     | Ast.In (e, q) -> Ast.Not_in (e, q)
     | Ast.In_list (e, cs) -> Ast.Not_in_list (e, cs)
     | p -> Ast.Not p)
  | Lexer.EXISTS ->
    advance st;
    expect st Lexer.LPAREN;
    let q = parse_query st in
    expect st Lexer.RPAREN;
    Ast.Exists q
  | Lexer.LPAREN ->
    advance st;
    let p = parse_pred st in
    expect st Lexer.RPAREN;
    p
  | _ -> parse_atom st

and parse_in_operand st e =
  expect st Lexer.LPAREN;
  if peek st = Lexer.SELECT then begin
    let q = parse_query st in
    expect st Lexer.RPAREN;
    Ast.In (e, q)
  end
  else begin
    let rec consts acc =
      let c = parse_const st in
      if peek st = Lexer.COMMA then begin
        advance st;
        consts (c :: acc)
      end
      else List.rev (c :: acc)
    in
    let cs = consts [] in
    expect st Lexer.RPAREN;
    Ast.In_list (e, cs)
  end

and parse_atom st =
  let e = parse_expr st in
  match peek st with
  | Lexer.EQ ->
    advance st;
    Ast.Cmp (Ast.Ceq, e, parse_expr st)
  | Lexer.NEQ ->
    advance st;
    Ast.Cmp (Ast.Cneq, e, parse_expr st)
  | Lexer.LT ->
    advance st;
    Ast.Cmp (Ast.Clt, e, parse_expr st)
  | Lexer.LE ->
    advance st;
    Ast.Cmp (Ast.Cle, e, parse_expr st)
  | Lexer.GT ->
    advance st;
    Ast.Cmp (Ast.Cgt, e, parse_expr st)
  | Lexer.GE ->
    advance st;
    Ast.Cmp (Ast.Cge, e, parse_expr st)
  | Lexer.IS ->
    advance st;
    (match peek st with
     | Lexer.NULL ->
       advance st;
       Ast.Is_null e
     | Lexer.NOT ->
       advance st;
       expect st Lexer.NULL;
       Ast.Is_not_null e
     | t -> parse_error "expected NULL or NOT NULL, found %a" Lexer.pp_token t)
  | Lexer.IN ->
    advance st;
    parse_in_operand st e
  | Lexer.NOT ->
    advance st;
    expect st Lexer.IN;
    (match parse_in_operand st e with
     | Ast.In (e, q) -> Ast.Not_in (e, q)
     | Ast.In_list (e, cs) -> Ast.Not_in_list (e, cs)
     | _ -> assert false)
  | t -> parse_error "expected comparison, found %a" Lexer.pp_token t

let run_parser f input =
  let st = { tokens = Lexer.tokenize input } in
  let result = f st in
  (match peek st with
   | Lexer.EOF -> ()
   | t -> parse_error "trailing input starting at %a" Lexer.pp_token t);
  result

let parse input = run_parser parse_query input

let parse_predicate input = run_parser parse_pred input
