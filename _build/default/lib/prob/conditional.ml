(* raw counts at a given k: (#valuations satisfying Σ,
   #valuations satisfying Σ and witnessing the tuple) *)
let counts ~run ~query_consts ~sigma db tuple ~k =
  let vals = Support.valuations_k ~query_consts db ~k in
  List.fold_left
    (fun (den, num) v ->
      let world = Valuation.apply_db v db in
      if Constraints.all_satisfied world sigma then
        let den = den + 1 in
        if Relation.mem (Valuation.apply_tuple v tuple) (run world) then
          (den, num + 1)
        else (den, num)
      else (den, num))
    (0, 0) vals

let mu_k ~run ~query_consts ~sigma db tuple ~k =
  let den, num = counts ~run ~query_consts ~sigma db tuple ~k in
  if den = 0 then Rational.zero else Rational.make num den

let mu ~run ~query_consts ~sigma db tuple =
  let n_nulls = List.length (Database.nulls db) in
  if n_nulls = 0 then
    (* no nulls: a single (empty) valuation *)
    mu_k ~run ~query_consts ~sigma db tuple ~k:1
  else begin
    (* the counts are polynomials in k of degree ≤ n_nulls once k
       exceeds the number of known constants: sample n_nulls + 1 points
       in the polynomial regime and interpolate *)
    let known =
      List.length (Database.consts db)
      + List.length
          (List.filter
             (fun c ->
               not (List.exists (Value.equal_const c) (Database.consts db)))
             query_consts)
    in
    let k0 = known + 1 in
    let points =
      List.init (n_nulls + 1) (fun i ->
          let k = k0 + i in
          let den, num = counts ~run ~query_consts ~sigma db tuple ~k in
          (Rational.of_int k, (num, den)))
    in
    let num_poly =
      Polynomial.interpolate
        (List.map (fun (k, (num, _)) -> (k, Rational.of_int num)) points)
    in
    let den_poly =
      Polynomial.interpolate
        (List.map (fun (k, (_, den)) -> (k, Rational.of_int den)) points)
    in
    if Polynomial.degree den_poly < 0 then
      (* Σ asymptotically unsatisfiable: the paper's convention is 0 *)
      Rational.zero
    else Polynomial.limit_ratio num_poly den_poly
  end

let mu_fd_via_chase ~run ~fds db tuple =
  match Chase.chase_fds db fds with
  | Chase.Failed -> Rational.zero
  | Chase.Chased (chased, subst) ->
    Zero_one.mu ~run chased (Chase.apply_subst subst tuple)

let mu_ra ~sigma db q tuple =
  mu ~run:(fun d -> Eval.run d q) ~query_consts:(Algebra.consts q) ~sigma db
    tuple
