(** Exact rational arithmetic over native integers.

    The probabilistic framework of Section 4.3 computes probabilities
    that are quotients of valuation counts; Theorem 4.11 guarantees the
    limits are rational.  The container has no arbitrary-precision
    library, so this module provides normalised [int] rationals with
    overflow detection — counts in our experiments are small products of
    falling factorials, well within 63 bits. *)

type t

exception Overflow

exception Division_by_zero

(** [make p q] is p/q in lowest terms with positive denominator.
    @raise Division_by_zero if [q = 0]. *)
val make : int -> int -> t

val of_int : int -> t

val zero : t
val one : t

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** @raise Division_by_zero *)
val div : t -> t -> t

val neg : t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val is_zero : t -> bool

val to_float : t -> float

val pp : Format.formatter -> t -> unit
val to_string : t -> string
