let almost_certainly_true ~run db tuple =
  let answers = Incdb_certain.Naive.run_with ~run db in
  Relation.mem tuple answers

let mu ~run db tuple =
  if almost_certainly_true ~run db tuple then Rational.one else Rational.zero

let mu_series ~run ~query_consts db tuple ks =
  List.map (fun k -> Support.mu_k ~run ~query_consts db tuple ~k) ks

let almost_certainly_true_ra db q tuple =
  almost_certainly_true ~run:(fun d -> Eval.run d q) db tuple

let mu_ra db q tuple = mu ~run:(fun d -> Eval.run d q) db tuple
