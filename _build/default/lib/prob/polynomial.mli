(** Polynomials with rational coefficients, used to recover the exact
    asymptotic probabilities of Section 4.3: for k large enough, the
    valuation counts |Suppᵏ| are polynomials in k (sums over collision
    patterns of falling factorials), so interpolating them at finitely
    many points and comparing leading coefficients yields the exact
    limit µ = lim µₖ. *)

type t
(** coefficients in increasing degree, normalised (no trailing zeros) *)

val zero : t
val of_coeffs : Rational.t list -> t

(** [degree p] is the degree, [-1] for the zero polynomial. *)
val degree : t -> int

(** [leading p] is the leading coefficient.
    @raise Invalid_argument on the zero polynomial. *)
val leading : t -> Rational.t

val eval : t -> Rational.t -> Rational.t

(** [interpolate points] is the unique polynomial of degree
    < length points through the given (x, y) pairs (Lagrange).
    @raise Invalid_argument on duplicate abscissae or empty input. *)
val interpolate : (Rational.t * Rational.t) list -> t

(** [limit_ratio p q] is lim_{k→∞} p(k)/q(k): zero when
    deg p < deg q, the ratio of leading coefficients when degrees are
    equal.  @raise Invalid_argument if deg p > deg q (the limit
    diverges) or q is the zero polynomial. *)
val limit_ratio : t -> t -> Rational.t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
