(** Conditional probabilities µ(Q | Σ, D, ā) of Section 4.3
    (Theorem 4.11): the asymptotic probability that ā answers Q in a
    randomly chosen possible world, conditioned on the constraints Σ
    holding.

    The limit always exists and is rational for generic Q and Σ.  It is
    computed {e exactly}: for k beyond the number of known constants,
    both |Suppᵏ(Σ∧Q)| and |Suppᵏ(Σ)| are polynomials in k of degree at
    most the number of nulls (a sum over collision patterns of
    falling-factorial counts), so we interpolate them from finitely
    many exact counts and take the ratio of leading coefficients
    ({!Polynomial.limit_ratio}).

    When Σ contains only functional dependencies the limit is 0 or 1
    and is obtained via the chase: µ(Q | Σ, D, ā) = µ(Q, D_Σ, ā). *)

(** [mu_k ~run ~query_consts ~sigma db tuple ~k] is µₖ(Q | Σ, D, ā):
    the fraction of the Σ-satisfying valuations in Vₖ that witness ā;
    0 when no valuation in Vₖ satisfies Σ (the paper's convention). *)
val mu_k :
  run:(Database.t -> Relation.t) ->
  query_consts:Value.const list ->
  sigma:Constraints.t list ->
  Database.t ->
  Tuple.t ->
  k:int ->
  Rational.t

(** [mu ~run ~query_consts ~sigma db tuple] is the exact limit
    µ(Q | Σ, D, ā), by polynomial interpolation of the counts. *)
val mu :
  run:(Database.t -> Relation.t) ->
  query_consts:Value.const list ->
  sigma:Constraints.t list ->
  Database.t ->
  Tuple.t ->
  Rational.t

(** [mu_fd_via_chase ~run db tuple ~fds] is the 0/1 fast path for
    FD-only constraints: chase, then apply the 0–1 law.  Returns 0 when
    the chase fails. *)
val mu_fd_via_chase :
  run:(Database.t -> Relation.t) ->
  fds:Constraints.fd list ->
  Database.t ->
  Tuple.t ->
  Rational.t

(** Relational algebra front end for {!mu}. *)
val mu_ra :
  sigma:Constraints.t list -> Database.t -> Algebra.t -> Tuple.t -> Rational.t
