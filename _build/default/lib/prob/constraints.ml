type fd = {
  fd_relation : string;
  lhs : int list;
  rhs : int list;
}

type ind = {
  sub_relation : string;
  sub_cols : int list;
  sup_relation : string;
  sup_cols : int list;
}

type t =
  | Fd of fd
  | Ind of ind

let fd r lhs rhs = Fd { fd_relation = r; lhs; rhs }

let key r cols ~arity =
  let rhs =
    List.filter (fun i -> not (List.mem i cols)) (List.init arity (fun i -> i))
  in
  fd r cols rhs

let ind sub sub_cols sup sup_cols =
  Ind { sub_relation = sub; sub_cols; sup_relation = sup; sup_cols }

let satisfied db = function
  | Fd { fd_relation; lhs; rhs } ->
    let r = Database.relation db fd_relation in
    Relation.for_all
      (fun t1 ->
        Relation.for_all
          (fun t2 ->
            if Tuple.equal (Tuple.project lhs t1) (Tuple.project lhs t2) then
              Tuple.equal (Tuple.project rhs t1) (Tuple.project rhs t2)
            else true)
          r)
      r
  | Ind { sub_relation; sub_cols; sup_relation; sup_cols } ->
    let sub = Database.relation db sub_relation in
    let sup = Database.relation db sup_relation in
    Relation.for_all
      (fun t ->
        let key = Tuple.project sub_cols t in
        Relation.exists
          (fun t' -> Tuple.equal key (Tuple.project sup_cols t'))
          sup)
      sub

let all_satisfied db cs = List.for_all (satisfied db) cs

let fds cs =
  List.filter_map (function Fd f -> Some f | Ind _ -> None) cs

let pp_cols ppf cols =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
    Format.pp_print_int ppf cols

let pp ppf = function
  | Fd { fd_relation; lhs; rhs } ->
    Format.fprintf ppf "%s: %a → %a" fd_relation pp_cols lhs pp_cols rhs
  | Ind { sub_relation; sub_cols; sup_relation; sup_cols } ->
    Format.fprintf ppf "%s[%a] ⊆ %s[%a]" sub_relation pp_cols sub_cols
      sup_relation pp_cols sup_cols
