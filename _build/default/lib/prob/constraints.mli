(** Integrity constraints (Section 4.3): functional dependencies and
    inclusion dependencies, the generic Boolean queries conditioning the
    probabilistic semantics µ(Q | Σ, D, ā). *)

(** Functional dependency R : lhs → rhs (0-based column lists). *)
type fd = {
  fd_relation : string;
  lhs : int list;
  rhs : int list;
}

(** Inclusion dependency R[cols] ⊆ S[cols]. *)
type ind = {
  sub_relation : string;
  sub_cols : int list;
  sup_relation : string;
  sup_cols : int list;
}

type t =
  | Fd of fd
  | Ind of ind

(** Convenience constructors. *)

val fd : string -> int list -> int list -> t
val key : string -> int list -> arity:int -> t
val ind : string -> int list -> string -> int list -> t

(** [satisfied db c] — two-valued check treating nulls as values; on
    complete databases this is the standard semantics (the constraint
    as a generic Boolean query). *)
val satisfied : Database.t -> t -> bool

val all_satisfied : Database.t -> t list -> bool

(** [fds cs] extracts the functional dependencies. *)
val fds : t list -> fd list

val pp : Format.formatter -> t -> unit
