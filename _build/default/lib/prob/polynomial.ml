type t = Rational.t array
(* coefficients by increasing degree; invariant: last coefficient nonzero *)

let normalize coeffs =
  let n = Array.length coeffs in
  let rec last i =
    if i < 0 then -1
    else if Rational.is_zero coeffs.(i) then last (i - 1)
    else i
  in
  let d = last (n - 1) in
  Array.sub coeffs 0 (d + 1)

let zero : t = [||]

let of_coeffs coeffs = normalize (Array.of_list coeffs)

let degree p = Array.length p - 1

let leading p =
  if Array.length p = 0 then invalid_arg "Polynomial.leading: zero polynomial"
  else p.(Array.length p - 1)

let eval p x =
  Array.fold_right
    (fun c acc -> Rational.add c (Rational.mul x acc))
    p Rational.zero

let add p q =
  let n = max (Array.length p) (Array.length q) in
  let coeff arr i =
    if i < Array.length arr then arr.(i) else Rational.zero
  in
  normalize (Array.init n (fun i -> Rational.add (coeff p i) (coeff q i)))

let scale c p = normalize (Array.map (Rational.mul c) p)

(* multiply by (x - a) *)
let mul_linear p a =
  let n = Array.length p in
  if n = 0 then zero
  else begin
    let out = Array.make (n + 1) Rational.zero in
    Array.iteri
      (fun i c ->
        out.(i + 1) <- Rational.add out.(i + 1) c;
        out.(i) <- Rational.sub out.(i) (Rational.mul a c))
      p;
    normalize out
  end

let interpolate points =
  if points = [] then invalid_arg "Polynomial.interpolate: no points";
  let xs = List.map fst points in
  let rec has_dup = function
    | [] -> false
    | x :: rest -> List.exists (Rational.equal x) rest || has_dup rest
  in
  if has_dup xs then
    invalid_arg "Polynomial.interpolate: duplicate abscissae";
  List.fold_left
    (fun acc (xi, yi) ->
      (* Lagrange basis polynomial for xi *)
      let basis, denom =
        List.fold_left
          (fun (p, d) xj ->
            if Rational.equal xi xj then (p, d)
            else (mul_linear p xj, Rational.mul d (Rational.sub xi xj)))
          (of_coeffs [ Rational.one ], Rational.one)
          xs
      in
      add acc (scale (Rational.div yi denom) basis))
    zero points

let limit_ratio p q =
  if Array.length q = 0 then
    invalid_arg "Polynomial.limit_ratio: zero denominator polynomial";
  let dp = degree p and dq = degree q in
  if dp > dq then invalid_arg "Polynomial.limit_ratio: diverges"
  else if dp < dq then Rational.zero
  else Rational.div (leading p) (leading q)

let equal p q =
  Array.length p = Array.length q
  && Array.for_all2 Rational.equal p q

let pp ppf p =
  if Array.length p = 0 then Format.pp_print_string ppf "0"
  else
    Array.iteri
      (fun i c ->
        if i > 0 then Format.fprintf ppf " + ";
        Format.fprintf ppf "%a·k^%d" Rational.pp c i)
      p
