type t = {
  num : int;
  den : int;  (* invariant: den > 0, gcd (|num|, den) = 1 *)
}

exception Overflow

exception Division_by_zero

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let checked_mul a b =
  let p = a * b in
  if a <> 0 && (p / a <> b || (a = -1 && b = min_int)) then raise Overflow;
  p

let checked_add a b =
  let s = a + b in
  if (a >= 0 && b >= 0 && s < 0) || (a < 0 && b < 0 && s >= 0) then
    raise Overflow;
  s

let make p q =
  if q = 0 then raise Division_by_zero;
  let sign = if q < 0 then -1 else 1 in
  let p = checked_mul p sign and q = checked_mul q sign in
  let g = gcd p q in
  if g = 0 then { num = 0; den = 1 } else { num = p / g; den = q / g }

let of_int n = { num = n; den = 1 }

let zero = of_int 0
let one = of_int 1

let num r = r.num
let den r = r.den

let add r1 r2 =
  (* cross-multiply through the gcd of denominators to delay overflow *)
  let g = gcd r1.den r2.den in
  let d1 = r1.den / g in
  let d2 = r2.den / g in
  let n = checked_add (checked_mul r1.num d2) (checked_mul r2.num d1) in
  make n (checked_mul (checked_mul d1 g) d2)

let neg r = { r with num = -r.num }

let sub r1 r2 = add r1 (neg r2)

let mul r1 r2 =
  (* cancel before multiplying *)
  let g1 = gcd r1.num r2.den and g2 = gcd r2.num r1.den in
  let g1 = if g1 = 0 then 1 else g1 and g2 = if g2 = 0 then 1 else g2 in
  make
    (checked_mul (r1.num / g1) (r2.num / g2))
    (checked_mul (r1.den / g2) (r2.den / g1))

let div r1 r2 =
  if r2.num = 0 then raise Division_by_zero;
  mul r1 { num = r2.den; den = abs r2.num }
  |> fun r -> if r2.num < 0 then neg r else r

let equal r1 r2 = r1.num = r2.num && r1.den = r2.den

let compare r1 r2 =
  (* both denominators positive *)
  Int.compare (checked_mul r1.num r2.den) (checked_mul r2.num r1.den)

let is_zero r = r.num = 0

let to_float r = float_of_int r.num /. float_of_int r.den

let pp ppf r =
  if r.den = 1 then Format.pp_print_int ppf r.num
  else Format.fprintf ppf "%d/%d" r.num r.den

let to_string r = Format.asprintf "%a" pp r
