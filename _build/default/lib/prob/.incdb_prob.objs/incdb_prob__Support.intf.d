lib/prob/support.mli: Database Rational Relation Tuple Valuation Value
