lib/prob/zero_one.ml: Eval Incdb_certain List Rational Relation Support
