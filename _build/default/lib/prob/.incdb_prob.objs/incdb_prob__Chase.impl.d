lib/prob/chase.ml: Array Constraints Database List Relation Tuple Value
