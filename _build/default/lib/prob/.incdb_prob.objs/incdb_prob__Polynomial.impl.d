lib/prob/polynomial.ml: Array Format List Rational
