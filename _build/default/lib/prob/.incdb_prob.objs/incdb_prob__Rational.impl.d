lib/prob/rational.ml: Format Int
