lib/prob/polynomial.mli: Format Rational
