lib/prob/chase.mli: Constraints Database Tuple Value
