lib/prob/constraints.mli: Database Format
