lib/prob/zero_one.mli: Algebra Database Rational Relation Tuple Value
