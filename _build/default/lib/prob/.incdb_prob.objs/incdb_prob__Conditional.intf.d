lib/prob/conditional.mli: Algebra Constraints Database Rational Relation Tuple Value
