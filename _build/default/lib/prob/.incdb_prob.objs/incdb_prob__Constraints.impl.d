lib/prob/constraints.ml: Database Format List Relation Tuple
