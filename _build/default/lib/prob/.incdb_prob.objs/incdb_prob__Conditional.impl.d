lib/prob/conditional.ml: Algebra Chase Constraints Database Eval List Polynomial Rational Relation Support Valuation Value Zero_one
