lib/prob/support.ml: Database Format Hashtbl List Rational Relation Valuation Value
