lib/prob/rational.mli: Format
