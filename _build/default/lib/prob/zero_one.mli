(** The 0–1 law for query answering (Theorem 4.10): a tuple ā is an
    almost certainly true answer to a generic query Q on D — that is,
    µ(Q, D, ā) = lim_k µₖ = 1 — iff ā ∈ Qnaive(D); otherwise
    µ(Q, D, ā) = 0.  Almost-certainly-true answers therefore have the
    same (low) complexity as naive evaluation. *)

(** [almost_certainly_true ~run db tuple] decides µ = 1 via naive
    evaluation — the fast path given by the theorem. *)
val almost_certainly_true :
  run:(Database.t -> Relation.t) -> Database.t -> Tuple.t -> bool

(** [mu ~run db tuple] is µ(Q, D, ā) ∈ {0, 1} computed via the 0–1 law. *)
val mu : run:(Database.t -> Relation.t) -> Database.t -> Tuple.t -> Rational.t

(** [mu_series ~run ~query_consts db tuple ks] is the list of µₖ values
    for the given ks — the convergent sequence whose limit the 0–1 law
    predicts; used to validate the law empirically and in benchmark
    E5. *)
val mu_series :
  run:(Database.t -> Relation.t) ->
  query_consts:Value.const list ->
  Database.t ->
  Tuple.t ->
  int list ->
  Rational.t list

(** Relational algebra front ends. *)

val almost_certainly_true_ra : Database.t -> Algebra.t -> Tuple.t -> bool
val mu_ra : Database.t -> Algebra.t -> Tuple.t -> Rational.t
