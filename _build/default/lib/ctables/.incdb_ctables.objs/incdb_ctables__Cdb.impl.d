lib/ctables/cdb.ml: Cond Ctable Database Format Int List Map Printf Schema String Tuple Value
