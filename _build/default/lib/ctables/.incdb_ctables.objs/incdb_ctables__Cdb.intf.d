lib/ctables/cdb.mli: Ctable Database Format Schema Valuation Value
