lib/ctables/ceval.ml: Algebra Cdb Cond Ctable Database Incdb_certain List Relation Tuple
