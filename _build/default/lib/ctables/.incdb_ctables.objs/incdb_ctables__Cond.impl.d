lib/ctables/cond.ml: Array Condition Format Hashtbl Int Kleene List Printf Tuple Valuation Value
