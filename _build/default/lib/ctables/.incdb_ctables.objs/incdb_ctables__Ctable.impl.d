lib/ctables/ctable.ml: Cond Format Kleene List Printf Relation Tuple Valuation
