lib/ctables/ceval.mli: Algebra Cdb Ctable Database Relation
