lib/ctables/ctable.mli: Cond Format Relation Tuple Valuation
