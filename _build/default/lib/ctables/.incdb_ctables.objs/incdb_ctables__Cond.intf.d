lib/ctables/cond.mli: Condition Format Kleene Tuple Valuation Value
