(** Conditional databases: databases whose relations are c-tables.

    The algorithms of [36] (Section 4.2) are defined on conditional
    databases — the input database is first converted into one where
    all conditions are true, but evaluation and its intermediate
    results live in this richer space, and genuinely conditional
    inputs (e.g. the output of data cleaning or exchange) are equally
    valid starting points.  {!Ceval.eval_cdb} runs the four strategies
    directly on a conditional database. *)

type t

val schema : t -> Schema.t

(** [of_database db] — every fact holds unconditionally. *)
val of_database : Database.t -> t

(** [of_list schema bindings] — build from explicit c-tuples; unlisted
    relations are empty.
    @raise Invalid_argument on arity mismatches. *)
val of_list : Schema.t -> (string * Ctable.ctuple list) list -> t

(** @raise Not_found for relations outside the schema. *)
val ctable : t -> string -> Ctable.t

(** [nulls cdb] — distinct null labels in tuples and conditions. *)
val nulls : t -> int list

(** [consts cdb] — distinct constants in tuples (conditions excluded:
    their constants do not enter answers). *)
val consts : t -> Value.const list

(** [world v cdb] instantiates the conditional database in the possible
    world of valuation [v] (total on {!nulls}): conditions decide
    membership, tuples are instantiated. *)
val world : Valuation.t -> t -> Database.t

val pp : Format.formatter -> t -> unit
