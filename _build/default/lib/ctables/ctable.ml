type ctuple = {
  tuple : Tuple.t;
  cond : Cond.t;
}

type t = {
  arity : int;
  ctuples : ctuple list;
}

let arity ct = ct.arity

let empty k = { arity = k; ctuples = [] }

let check_arity k (c : ctuple) =
  if Tuple.arity c.tuple <> k then
    invalid_arg
      (Printf.sprintf "Ctable: c-tuple of arity %d in table of arity %d"
         (Tuple.arity c.tuple) k)

let of_list k ctuples =
  List.iter (check_arity k) ctuples;
  { arity = k; ctuples }

let to_list ct = ct.ctuples

let of_relation r =
  {
    arity = Relation.arity r;
    ctuples =
      Relation.fold (fun t acc -> { tuple = t; cond = Cond.True } :: acc) r [];
  }

let map ~arity f ct =
  let ctuples =
    List.map
      (fun c ->
        let c' = f c in
        check_arity arity c';
        c')
      ct.ctuples
  in
  { arity; ctuples }

let filter f ct = { ct with ctuples = List.filter f ct.ctuples }

let append ct1 ct2 =
  if ct1.arity <> ct2.arity then
    invalid_arg "Ctable.append: arity mismatch";
  { arity = ct1.arity; ctuples = ct1.ctuples @ ct2.ctuples }

let cardinal ct = List.length ct.ctuples

let normalize ct =
  let not_false c = Cond.ground c.cond <> Kleene.F in
  let rec dedup seen = function
    | [] -> List.rev seen
    | c :: rest ->
      if List.exists (fun c' -> c = c') seen then dedup seen rest
      else dedup (c :: seen) rest
  in
  { ct with ctuples = dedup [] (List.filter not_false ct.ctuples) }

let certain ct =
  List.fold_left
    (fun r c ->
      if Cond.ground c.cond = Kleene.T then Relation.add c.tuple r else r)
    (Relation.empty ct.arity) ct.ctuples

let possible ct =
  List.fold_left
    (fun r c ->
      match Cond.ground c.cond with
      | Kleene.T | Kleene.U -> Relation.add c.tuple r
      | Kleene.F -> r)
    (Relation.empty ct.arity) ct.ctuples

let answer_in_world v ct =
  List.fold_left
    (fun r c ->
      if Cond.eval v c.cond then Relation.add (Valuation.apply_tuple v c.tuple) r
      else r)
    (Relation.empty ct.arity) ct.ctuples

let pp ppf ct =
  let pp_ctuple ppf c =
    Format.fprintf ppf "⟨%a, %a⟩" Tuple.pp c.tuple Cond.pp c.cond
  in
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       pp_ctuple)
    ct.ctuples
