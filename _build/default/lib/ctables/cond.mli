(** Conditions attached to c-tuples (Section 4.2, "Approximation schemes
    based on conditional tables").

    A condition constrains the valuations of nulls under which a c-tuple
    is present: atoms are (dis)equalities between values (constants and
    nulls), closed under ∧, ∨, ¬.  [Unknown] is the residue left by
    grounding a condition that can be neither proved nor refuted. *)

type t =
  | True
  | False
  | Unknown
  | Eq of Value.t * Value.t
  | Neq of Value.t * Value.t
  | Lt of Value.t * Value.t
      (** typed order comparison — grounded like a disequality: decided
          on constants, u when a null is involved, f when the operands
          are literally equal *)
  | Le of Value.t * Value.t
  | And of t * t
  | Or of t * t
  | Not of t

(** [ground c] is the three-valued truth of [c] given only what is known
    syntactically: [Eq (x, y)] is t when [x = y] literally, f when both
    are constants (or handled by repeated-null reasoning) and distinct,
    u otherwise.  No propagation across atoms is attempted — that is the
    job of {!simplify} and {!propagate}. *)
val ground : t -> Kleene.t

(** [of_kleene v] is the condition constant representing [v]. *)
val of_kleene : Kleene.t -> t

(** [simplify c] performs the "minimal rewriting" of the aware strategy:
    recursively evaluates decidable atoms, absorbs units, removes double
    negations, pushes ¬ to atoms, and detects complementary pairs —
    e.g. Eq(x,y) ∨ Neq(x,y) becomes [True] even when the atom itself is
    undecidable.  The result is equivalent on every valuation. *)
val simplify : t -> t

(** [forced_equalities c] is the set of equalities that must hold
    whenever [c] holds: the equality atoms appearing conjunctively
    (never under ¬ or ∨), as a most-general unifier mapping nulls to
    values.  Used by the semi-eager strategy's equality propagation. *)
val forced_equalities : t -> (int * Value.t) list

(** [substitute subst c] replaces nulls by values in all atoms. *)
val substitute : (int * Value.t) list -> t -> t

(** [substitute_tuple subst t] applies the substitution to a tuple. *)
val substitute_tuple : (int * Value.t) list -> Tuple.t -> Tuple.t

(** [eval v c] is the two-valued truth of [c] under a valuation total on
    the nulls of [c]: the reference semantics used in tests.
    @raise Invalid_argument if some null is unassigned or [c] contains
    [Unknown]. *)
val eval : Valuation.t -> t -> bool

(** [nulls c] lists the distinct null labels in [c]. *)
val nulls : t -> int list

(** [of_selection theta tuple] instantiates a relational-algebra
    selection condition on the values of a c-tuple.  Column references
    become the tuple's values; [const]/[null] tests are resolved
    syntactically (they describe the incomplete database, not its
    possible worlds). *)
val of_selection : Condition.t -> Tuple.t -> t

(** [tuple_eq t1 t2] is the condition that the two tuples coincide:
    the conjunction of componentwise equalities (False on arity
    mismatch). *)
val tuple_eq : Tuple.t -> Tuple.t -> t

val pp : Format.formatter -> t -> unit
