module String_map = Map.Make (String)

type t = {
  schema : Schema.t;
  ctables : Ctable.t String_map.t;
}

let schema cdb = cdb.schema

let of_database db =
  let schema = Database.schema db in
  let ctables =
    List.fold_left
      (fun m (d : Schema.relation_decl) ->
        String_map.add d.name
          (Ctable.of_relation (Database.relation db d.name))
          m)
      String_map.empty (Schema.relations schema)
  in
  { schema; ctables }

let of_list schema bindings =
  let empty =
    List.fold_left
      (fun m (d : Schema.relation_decl) ->
        String_map.add d.name (Ctable.empty (List.length d.attributes)) m)
      String_map.empty (Schema.relations schema)
  in
  let ctables =
    List.fold_left
      (fun m (name, ctuples) ->
        if not (String_map.mem name m) then
          invalid_arg (Printf.sprintf "Cdb.of_list: unknown relation %s" name);
        String_map.add name
          (Ctable.of_list (Schema.arity schema name) ctuples)
          m)
      empty bindings
  in
  { schema; ctables }

let ctable cdb name =
  match String_map.find_opt name cdb.ctables with
  | Some ct -> ct
  | None -> raise Not_found

let nulls cdb =
  let acc = ref [] in
  let add n = if not (List.mem n !acc) then acc := n :: !acc in
  String_map.iter
    (fun _ ct ->
      List.iter
        (fun (c : Ctable.ctuple) ->
          List.iter add (Tuple.nulls c.tuple);
          List.iter add (Cond.nulls c.cond))
        (Ctable.to_list ct))
    cdb.ctables;
  List.sort Int.compare !acc

let consts cdb =
  let acc = ref [] in
  let add c =
    if not (List.exists (Value.equal_const c) !acc) then acc := c :: !acc
  in
  String_map.iter
    (fun _ ct ->
      List.iter
        (fun (c : Ctable.ctuple) -> List.iter add (Tuple.consts c.tuple))
        (Ctable.to_list ct))
    cdb.ctables;
  List.rev !acc

let world v cdb =
  String_map.fold
    (fun name ct db ->
      Database.set_relation db name (Ctable.answer_in_world v ct))
    cdb.ctables
    (Database.create cdb.schema)

let pp ppf cdb =
  let pp_binding ppf (name, ct) =
    Format.fprintf ppf "@[<2>%s =@ %a@]" name Ctable.pp ct
  in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_binding)
    (String_map.bindings cdb.ctables)
