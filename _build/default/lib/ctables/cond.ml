type t =
  | True
  | False
  | Unknown
  | Eq of Value.t * Value.t
  | Neq of Value.t * Value.t
  | Lt of Value.t * Value.t
  | Le of Value.t * Value.t
  | And of t * t
  | Or of t * t
  | Not of t

let rec ground = function
  | True -> Kleene.T
  | False -> Kleene.F
  | Unknown -> Kleene.U
  | Eq (x, y) ->
    if Value.equal x y then Kleene.T
    else if Value.is_const x && Value.is_const y then Kleene.F
    else Kleene.U
  | Neq (x, y) ->
    if Value.equal x y then Kleene.F
    else if Value.is_const x && Value.is_const y then Kleene.T
    else Kleene.U
  | Lt (x, y) ->
    if Value.equal x y then Kleene.F
    else if Value.is_const x && Value.is_const y then
      Kleene.of_bool (Value.compare x y < 0)
    else Kleene.U
  | Le (x, y) ->
    if Value.equal x y then Kleene.T
    else if Value.is_const x && Value.is_const y then
      Kleene.of_bool (Value.compare x y <= 0)
    else Kleene.U
  | And (a, b) -> Kleene.conj (ground a) (ground b)
  | Or (a, b) -> Kleene.disj (ground a) (ground b)
  | Not a -> Kleene.neg (ground a)

let of_kleene = function
  | Kleene.T -> True
  | Kleene.F -> False
  | Kleene.U -> Unknown

(* canonical orientation of an atom's operands, so that complementary
   pairs are syntactically recognisable *)
let orient x y = if Value.compare x y <= 0 then (x, y) else (y, x)

(* negation normal form: ¬ pushed to atoms and eliminated *)
let rec nnf = function
  | True -> True
  | False -> False
  | Unknown -> Unknown
  | Eq (x, y) -> let x, y = orient x y in Eq (x, y)
  | Neq (x, y) -> let x, y = orient x y in Neq (x, y)
  | Lt _ | Le _ as c -> c
  | And (a, b) -> And (nnf a, nnf b)
  | Or (a, b) -> Or (nnf a, nnf b)
  | Not a -> nnf_neg a

and nnf_neg = function
  | True -> False
  | False -> True
  | Unknown -> Unknown
  | Eq (x, y) -> let x, y = orient x y in Neq (x, y)
  | Neq (x, y) -> let x, y = orient x y in Eq (x, y)
  | Lt (x, y) -> Le (y, x)
  | Le (x, y) -> Lt (y, x)
  | And (a, b) -> Or (nnf_neg a, nnf_neg b)
  | Or (a, b) -> And (nnf_neg a, nnf_neg b)
  | Not a -> nnf a

let rec flatten_or = function
  | Or (a, b) -> flatten_or a @ flatten_or b
  | c -> [ c ]

let rec flatten_and = function
  | And (a, b) -> flatten_and a @ flatten_and b
  | c -> [ c ]

let complement = function
  | Eq (x, y) -> Some (Neq (x, y))
  | Neq (x, y) -> Some (Eq (x, y))
  | Lt (x, y) -> Some (Le (y, x))
  | Le (x, y) -> Some (Lt (y, x))
  | True | False | Unknown | And _ | Or _ | Not _ -> None

let rebuild unit_ op = function
  | [] -> unit_
  | c :: cs -> List.fold_left op c cs

let simplify cond =
  let rec go c =
    match c with
    | True | False | Unknown | Eq _ | Neq _ | Lt _ | Le _ ->
      (match ground c with
       | Kleene.T -> True
       | Kleene.F -> False
       | Kleene.U -> c)
    | Not _ -> assert false (* eliminated by nnf *)
    | And _ ->
      let parts = List.map go (flatten_and c) in
      if List.exists (fun p -> p = False) parts then False
      else
        let parts =
          List.sort_uniq compare (List.filter (fun p -> p <> True) parts)
        in
        let contradictory =
          List.exists
            (fun p ->
              match complement p with
              | Some q -> List.mem q parts
              | None -> false)
            parts
        in
        if contradictory then False
        else rebuild True (fun a b -> And (a, b)) parts
    | Or _ ->
      let parts = List.map go (flatten_or c) in
      if List.exists (fun p -> p = True) parts then True
      else
        let parts =
          List.sort_uniq compare (List.filter (fun p -> p <> False) parts)
        in
        let tautological =
          List.exists
            (fun p ->
              match complement p with
              | Some q -> List.mem q parts
              | None -> false)
            parts
        in
        if tautological then True
        else rebuild False (fun a b -> Or (a, b)) parts
  in
  go (nnf cond)

let forced_equalities cond =
  (* union-find over nulls, classes optionally bound to a constant or to
     a representative null *)
  let parent : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let binding : (int, Value.const) Hashtbl.t = Hashtbl.create 8 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | None -> x
    | Some p ->
      let r = find p in
      if r <> p then Hashtbl.replace parent x r;
      r
  in
  let bind n c =
    let r = find n in
    match Hashtbl.find_opt binding r with
    | None -> Hashtbl.replace binding r c
    | Some c' -> if not (Value.equal_const c c') then () (* conflict: skip *)
  in
  let union n1 n2 =
    let r1 = find n1 and r2 = find n2 in
    if r1 <> r2 then begin
      Hashtbl.replace parent r1 r2;
      match Hashtbl.find_opt binding r1 with
      | None -> ()
      | Some c -> Hashtbl.remove binding r1; bind r2 c
    end
  in
  let rec collect = function
    | And (a, b) -> collect a; collect b
    | Eq (Value.Null n, Value.Const c) | Eq (Value.Const c, Value.Null n) ->
      bind n c
    | Eq (Value.Null n1, Value.Null n2) -> union n1 n2
    | True | False | Unknown | Eq _ | Neq _ | Lt _ | Le _ | Or _ | Not _ ->
      ()
  in
  collect cond;
  let nulls = Hashtbl.fold (fun n _ acc -> n :: acc) parent [] in
  let all_nulls =
    List.sort_uniq Int.compare
      (nulls @ Hashtbl.fold (fun n _ acc -> n :: acc) binding [])
  in
  List.filter_map
    (fun n ->
      let r = find n in
      match Hashtbl.find_opt binding r with
      | Some c -> Some (n, Value.Const c)
      | None -> if r <> n then Some (n, Value.Null r) else None)
    all_nulls

let subst_value subst v =
  match v with
  | Value.Const _ -> v
  | Value.Null n ->
    (match List.assoc_opt n subst with Some w -> w | None -> v)

let rec substitute subst = function
  | True -> True
  | False -> False
  | Unknown -> Unknown
  | Eq (x, y) -> Eq (subst_value subst x, subst_value subst y)
  | Neq (x, y) -> Neq (subst_value subst x, subst_value subst y)
  | Lt (x, y) -> Lt (subst_value subst x, subst_value subst y)
  | Le (x, y) -> Le (subst_value subst x, subst_value subst y)
  | And (a, b) -> And (substitute subst a, substitute subst b)
  | Or (a, b) -> Or (substitute subst a, substitute subst b)
  | Not a -> Not (substitute subst a)

let substitute_tuple subst t = Array.map (subst_value subst) t

let eval v cond =
  let value x =
    match Valuation.apply_value v x with
    | Value.Const _ as w -> w
    | Value.Null n ->
      invalid_arg (Printf.sprintf "Cond.eval: null _%d unassigned" n)
  in
  let rec go = function
    | True -> true
    | False -> false
    | Unknown -> invalid_arg "Cond.eval: Unknown has no two-valued truth"
    | Eq (x, y) -> Value.equal (value x) (value y)
    | Neq (x, y) -> not (Value.equal (value x) (value y))
    | Lt (x, y) -> Value.compare (value x) (value y) < 0
    | Le (x, y) -> Value.compare (value x) (value y) <= 0
    | And (a, b) -> go a && go b
    | Or (a, b) -> go a || go b
    | Not a -> not (go a)
  in
  go cond

let nulls cond =
  let acc = ref [] in
  let add = function
    | Value.Null n -> if not (List.mem n !acc) then acc := n :: !acc
    | Value.Const _ -> ()
  in
  let rec go = function
    | True | False | Unknown -> ()
    | Eq (x, y) | Neq (x, y) | Lt (x, y) | Le (x, y) -> add x; add y
    | And (a, b) | Or (a, b) -> go a; go b
    | Not a -> go a
  in
  go cond;
  List.rev !acc

let of_selection theta tuple =
  let value = function
    | Condition.Col i ->
      if i < 0 || i >= Tuple.arity tuple then
        invalid_arg
          (Printf.sprintf "Cond.of_selection: column %d out of bounds" i)
      else tuple.(i)
    | Condition.Lit c -> Value.Const c
  in
  let rec go = function
    | Condition.True -> True
    | Condition.False -> False
    | Condition.Is_const i ->
      if Value.is_const (value (Condition.Col i)) then True else False
    | Condition.Is_null i ->
      if Value.is_null (value (Condition.Col i)) then True else False
    | Condition.Eq (x, y) -> Eq (value x, value y)
    | Condition.Neq (x, y) -> Neq (value x, value y)
    | Condition.Lt (x, y) -> Lt (value x, value y)
    | Condition.Le (x, y) -> Le (value x, value y)
    | Condition.And (a, b) -> And (go a, go b)
    | Condition.Or (a, b) -> Or (go a, go b)
  in
  go theta

let tuple_eq t1 t2 =
  if Tuple.arity t1 <> Tuple.arity t2 then False
  else begin
    let conds = ref [] in
    Array.iteri (fun i x -> conds := Eq (x, t2.(i)) :: !conds) t1;
    rebuild True (fun a b -> And (a, b)) !conds
  end

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "t"
  | False -> Format.pp_print_string ppf "f"
  | Unknown -> Format.pp_print_string ppf "u"
  | Eq (x, y) -> Format.fprintf ppf "%a = %a" Value.pp x Value.pp y
  | Neq (x, y) -> Format.fprintf ppf "%a ≠ %a" Value.pp x Value.pp y
  | Lt (x, y) -> Format.fprintf ppf "%a < %a" Value.pp x Value.pp y
  | Le (x, y) -> Format.fprintf ppf "%a ≤ %a" Value.pp x Value.pp y
  | And (a, b) -> Format.fprintf ppf "(%a ∧ %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a ∨ %a)" pp a pp b
  | Not a -> Format.fprintf ppf "¬(%a)" pp a
