(** Conditional tables: relations whose tuples carry conditions.

    A c-tuple ⟨t̄, φ⟩ asserts that t̄ is in the relation exactly in the
    possible worlds whose valuation satisfies φ (cf. Imieliński &
    Lipski [43]). *)

type ctuple = {
  tuple : Tuple.t;
  cond : Cond.t;
}

type t

val arity : t -> int
val empty : int -> t

(** [of_list k ctuples] — duplicates are kept (their conditions may
    differ).  @raise Invalid_argument on arity mismatch. *)
val of_list : int -> ctuple list -> t

val to_list : t -> ctuple list

(** [of_relation r] attaches the condition [True] to every tuple. *)
val of_relation : Relation.t -> t

val map : arity:int -> (ctuple -> ctuple) -> t -> t
val filter : (ctuple -> bool) -> t -> t
val append : t -> t -> t
val cardinal : t -> int

(** [normalize ct] drops c-tuples whose condition grounds to f and
    merges syntactically equal c-tuples (disjoining their conditions
    would require condition equality; we merge only identical pairs). *)
val normalize : t -> t

(** [certain ct] is the relation of tuples whose condition grounds to t
    — the set Evalₜ of (9a). *)
val certain : t -> Relation.t

(** [possible ct] is the relation of tuples whose condition grounds to t
    or u — the set Evalₚ of (9b). *)
val possible : t -> Relation.t

(** [answer_in_world v ct] is the plain relation denoted by [ct] in the
    possible world given by valuation [v]: the v-images of the tuples
    whose condition is satisfied by [v].  Reference semantics used in
    tests. *)
val answer_in_world : Valuation.t -> t -> Relation.t

val pp : Format.formatter -> t -> unit
