type rng = Random.State.t

let make_rng ~seed = Random.State.make [| seed |]

let random_value rng ~const_pool ~null_rate ~next_null =
  if Random.State.float rng 1.0 < null_rate then begin
    let label = !next_null in
    incr next_null;
    Value.Null label
  end
  else Value.int (Random.State.int rng const_pool)

let random_relation rng ~arity ~size ~const_pool ~null_rate ~next_null =
  let tuple () =
    Array.init arity (fun _ ->
        random_value rng ~const_pool ~null_rate ~next_null)
  in
  Relation.of_list arity (List.init size (fun _ -> tuple ()))

let random_database rng schema ~size ~const_pool ~null_rate =
  let next_null = ref 0 in
  List.fold_left
    (fun db (decl : Schema.relation_decl) ->
      let arity = List.length decl.attributes in
      Database.set_relation db decl.name
        (random_relation rng ~arity ~size ~const_pool ~null_rate ~next_null))
    (Database.create schema) (Schema.relations schema)

let inject_nulls rng ~rate db =
  let next_null = ref (Database.fresh_null db) in
  Database.map_relations
    (fun _ r ->
      Relation.map ~arity:(Relation.arity r)
        (Array.map (fun v ->
             if Value.is_const v && Random.State.float rng 1.0 < rate then begin
               let label = !next_null in
               incr next_null;
               Value.Null label
             end
             else v))
        r)
    db

let random_condition rng ~arity ~positive =
  let col () = Random.State.int rng arity in
  let atom () =
    match Random.State.int rng (if positive then 2 else 6) with
    | 0 -> Condition.eq_col (col ()) (col ())
    | 1 -> Condition.eq_const (col ()) (Value.Int (Random.State.int rng 5))
    | 2 -> Condition.neq_col (col ()) (col ())
    | 3 ->
      Condition.Lt
        (Condition.Col (col ()), Condition.Lit (Value.Int (Random.State.int rng 5)))
    | 4 -> Condition.Le (Condition.Col (col ()), Condition.Col (col ()))
    | _ -> Condition.neq_const (col ()) (Value.Int (Random.State.int rng 5))
  in
  match Random.State.int rng 3 with
  | 0 -> atom ()
  | 1 -> Condition.And (atom (), atom ())
  | _ -> Condition.Or (atom (), atom ())

let random_query rng schema ~depth ~positive =
  let rels = Schema.relations schema in
  let base () =
    let decl = List.nth rels (Random.State.int rng (List.length rels)) in
    Algebra.Rel decl.Schema.name
  in
  let arity q = Algebra.arity schema q in
  let rec build depth =
    if depth <= 0 then base ()
    else
      let q1 = build (depth - 1) in
      let k1 = arity q1 in
      let align q k = if k = 1 then q else Algebra.Project ([ 0 ], q) in
      match Random.State.int rng (if positive then 5 else 6) with
      | 0 -> base ()
      | 1 when k1 > 0 ->
        Algebra.Select (random_condition rng ~arity:k1 ~positive, q1)
      | 2 when k1 > 1 ->
        let keep = 1 + Random.State.int rng (min 2 k1) in
        Algebra.Project
          (List.init keep (fun _ -> Random.State.int rng k1), q1)
      | 3 ->
        let q2 = build (depth - 1) in
        if k1 + arity q2 <= 3 then Algebra.Product (q1, q2) else q1
      | 5 ->
        (* only reachable when [positive] is false *)
        let q2 = build (depth - 1) in
        Algebra.Diff (align q1 k1, align q2 (arity q2))
      | _ ->
        let q2 = build (depth - 1) in
        Algebra.Union (align q1 k1, align q2 (arity q2))
  in
  build depth
