let schema =
  Schema.of_list
    [ ("customer", [ "custkey"; "cname"; "nationkey" ]);
      ("orders", [ "orderkey"; "ocustkey"; "totalprice"; "ostatus" ]);
      ("lineitem", [ "lorderkey"; "lpartkey"; "quantity" ]);
      ("part", [ "partkey"; "pname"; "psize" ]) ]

let generate rng ~scale =
  let n_cust = 25 * scale in
  let n_orders = 50 * scale in
  let n_items = 100 * scale in
  let n_parts = 20 * scale in
  let ri n = Random.State.int rng (max n 1) in
  let customers =
    List.init n_cust (fun i ->
        [| Value.int i; Value.str (Printf.sprintf "cust%d" i);
           Value.int (ri 10) |])
  in
  let orders =
    List.init n_orders (fun i ->
        [| Value.int i; Value.int (ri n_cust); Value.int (10 + ri 990);
           Value.int (ri 2) |])
  in
  let lineitems =
    List.init n_items (fun _ ->
        [| Value.int (ri n_orders); Value.int (ri n_parts);
           Value.int (1 + ri 50) |])
  in
  let parts =
    List.init n_parts (fun i ->
        [| Value.int i; Value.str (Printf.sprintf "part%d" i);
           Value.int (1 + ri 5) |])
  in
  Database.of_list schema
    [ ("customer", customers); ("orders", orders); ("lineitem", lineitems);
      ("part", parts) ]

(* non-key columns, where nulls are injected *)
let nullable_columns = function
  | "customer" -> [ 1; 2 ]
  | "orders" -> [ 2; 3 ]
  | "lineitem" -> [ 2 ]
  | "part" -> [ 1; 2 ]
  | _ -> []

let with_nulls rng ~rate db =
  let next_null = ref (Database.fresh_null db) in
  Database.map_relations
    (fun name r ->
      let cols = nullable_columns name in
      Relation.map ~arity:(Relation.arity r)
        (fun t ->
          Array.mapi
            (fun idx v ->
              if
                List.mem idx cols
                && Value.is_const v
                && Random.State.float rng 1.0 < rate
              then begin
                let label = !next_null in
                incr next_null;
                Value.Null label
              end
              else v)
            t)
        r)
    db

type named_query = {
  qname : string;
  description : string;
  query : Algebra.t;
}

let queries =
  let open Algebra in
  [ { qname = "q1_orders_without_items";
      description = "orders with no line item (anti-join / difference)";
      query =
        Diff (Project ([ 0 ], Rel "orders"), Project ([ 0 ], Rel "lineitem"));
    };
    { qname = "q2_idle_customers";
      description = "customers who placed no order (anti-join)";
      query =
        Diff (Project ([ 0 ], Rel "customer"), Project ([ 1 ], Rel "orders"));
    };
    { qname = "q3_open_order_customers";
      description = "customers with an open (status 0) order (join, UCQ)";
      query =
        Project
          ( [ 0 ],
            Select
              ( Condition.And
                  ( Condition.eq_col 0 4,
                    Condition.eq_const 6 (Value.Int 0) ),
                Product (Rel "customer", Rel "orders") ) );
    };
    { qname = "q4_unordered_parts";
      description = "parts that appear in no line item (anti-join)";
      query =
        Diff (Project ([ 0 ], Rel "part"), Project ([ 1 ], Rel "lineitem"));
    };
    { qname = "q5_completionists";
      description =
        "customers who ordered every size-1 part (relational division)";
      query =
        (let cust_part =
           Project
             ( [ 1; 5 ],
               Select
                 (Condition.eq_col 0 4, Product (Rel "orders", Rel "lineitem"))
             )
         in
         let small_parts =
           Project ([ 0 ], Select (Condition.eq_const 2 (Value.Int 1), Rel "part"))
         in
         Division (cust_part, small_parts));
    };
    { qname = "q6_mixed_status";
      description = "orders that are open or shipped (union of selections)";
      query =
        Union
          ( Project ([ 0 ], Select (Condition.eq_const 3 (Value.Int 0), Rel "orders")),
            Project ([ 0 ], Select (Condition.eq_const 3 (Value.Int 1), Rel "orders"))
          );
    };
    { qname = "q8_bargain_orders";
      description =
        "open orders under 300 (typed order comparison, Section 6)";
      query =
        Project
          ( [ 0 ],
            Select
              ( Condition.And
                  ( Condition.Lt (Condition.Col 2, Condition.Lit (Value.Int 300)),
                    Condition.eq_const 3 (Value.Int 0) ),
                Rel "orders" ) );
    };
    { qname = "q7_exclusive_parts";
      description =
        "parts ordered only in large quantities (difference of projections)";
      query =
        Diff
          ( Project ([ 1 ], Rel "lineitem"),
            Project
              ( [ 1 ],
                Select (Condition.eq_const 2 (Value.Int 1), Rel "lineitem") ) );
    } ]

let query name = List.find (fun q -> String.equal q.qname name) queries
