lib/workload/tpch_mini.mli: Algebra Database Generator Schema
