lib/workload/generator.mli: Algebra Database Random Relation Schema
