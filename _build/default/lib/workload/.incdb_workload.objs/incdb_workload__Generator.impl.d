lib/workload/generator.ml: Algebra Array Condition Database List Random Relation Schema Value
