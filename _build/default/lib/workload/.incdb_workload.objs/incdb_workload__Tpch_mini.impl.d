lib/workload/tpch_mini.ml: Algebra Array Condition Database List Printf Random Relation Schema String Value
