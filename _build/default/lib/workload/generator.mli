(** Workload generation: random incomplete databases with a controlled
    amount of incompleteness, and random queries.  Deterministic given
    the seed, so experiments are reproducible. *)

type rng = Random.State.t

val make_rng : seed:int -> rng

(** [random_relation rng ~arity ~size ~const_pool ~null_rate ~next_null]
    draws [size] tuples with values from a pool of [const_pool] integer
    constants; each position independently becomes a fresh marked null
    with probability [null_rate], labels starting at [!next_null]
    (the counter is advanced). *)
val random_relation :
  rng ->
  arity:int ->
  size:int ->
  const_pool:int ->
  null_rate:float ->
  next_null:int ref ->
  Relation.t

(** [random_database rng schema ~size ~const_pool ~null_rate] fills
    every relation of the schema with [size] random tuples. *)
val random_database :
  rng ->
  Schema.t ->
  size:int ->
  const_pool:int ->
  null_rate:float ->
  Database.t

(** [inject_nulls rng ~rate db] replaces each value occurrence by a
    fresh marked null with probability [rate] — Codd-style
    incompleteness injected into a complete database, as in the
    benchmark methodology of [37] and [27]. *)
val inject_nulls : rng -> rate:float -> Database.t -> Database.t

(** [random_query rng schema ~depth ~positive] draws a well-typed
    random algebra query over the schema's relations (arity capped at
    3).  With [positive] no difference and no ≠/const/null conditions
    are produced. *)
val random_query : rng -> Schema.t -> depth:int -> positive:bool -> Algebra.t
