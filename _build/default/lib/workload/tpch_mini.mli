(** A scaled-down TPC-H-style workload.

    The paper's feasibility studies ([37], [27]) run the approximation
    schemes on the TPC Benchmark H inside commercial DBMSs.  The sealed
    environment has neither, so this module provides a deterministic
    generator for a database with the same shape — customers, orders,
    line items, parts — and a fixed set of decision-support queries
    that exercise the constructs the paper discusses: negation
    (unpaid-order style anti-joins), joins, unions and division.
    See DESIGN.md §3 for the substitution argument. *)

val schema : Schema.t

(** [generate rng ~scale] builds a complete database with roughly
    [25 × scale] customers, [50 × scale] orders, [100 × scale] line
    items and [20 × scale] parts, with foreign keys consistent. *)
val generate : Generator.rng -> scale:int -> Database.t

(** [with_nulls rng ~rate db] injects Codd-style nulls into the
    non-key columns of [db]; keys are kept complete so that joins stay
    meaningful (this mirrors [27]'s methodology). *)
val with_nulls : Generator.rng -> rate:float -> Database.t -> Database.t

type named_query = {
  qname : string;
  description : string;
  query : Algebra.t;
}

(** The query suite: Q1–Q6, from pure UCQs to difference-heavy and
    division queries. *)
val queries : named_query list

(** [query name] looks a query up by name.  @raise Not_found. *)
val query : string -> named_query
