lib/datalog/parser.mli: Syntax
