lib/datalog/parser.ml: Format List String Syntax Value
