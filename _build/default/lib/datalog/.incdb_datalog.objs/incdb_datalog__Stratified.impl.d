lib/datalog/stratified.ml: Array Database Format Hashtbl Incdb_certain List Relation Schema String Syntax Tuple Value
