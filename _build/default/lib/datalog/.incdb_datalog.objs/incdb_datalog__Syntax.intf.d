lib/datalog/syntax.mli: Format Value
