lib/datalog/syntax.ml: Format Hashtbl List String Value
