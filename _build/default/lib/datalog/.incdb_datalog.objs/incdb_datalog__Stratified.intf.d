lib/datalog/stratified.mli: Database Relation Syntax
