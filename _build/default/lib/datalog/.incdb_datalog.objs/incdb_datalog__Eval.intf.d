lib/datalog/eval.mli: Database Relation Syntax
