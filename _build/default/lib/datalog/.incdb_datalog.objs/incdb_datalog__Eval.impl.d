lib/datalog/eval.ml: Array Database Format Hashtbl Incdb_certain List Relation Schema Syntax Tuple Value
