(** Positive Datalog over incomplete databases.

    Section 2 lists Datalog among the standard query languages that
    cannot invent values; since positive Datalog programs are monotone
    — preserved under arbitrary homomorphisms — naive evaluation
    computes their certain answers with nulls under both CWA and OWA
    (Theorem 4.3 applied beyond first-order logic).  This module defines
    the syntax; {!Eval} runs bottom-up fixpoint evaluation with nulls
    treated as values. *)

type term =
  | Var of string
  | Val of Value.t  (** constants; marked nulls may appear in facts *)

type atom = {
  pred : string;
  args : term list;
}

(** A rule [head :- body].  Rules must be {e safe}: every head variable
    occurs in the body.  An empty body makes the rule a fact (its head
    must then be ground). *)
type rule = {
  head : atom;
  body : atom list;
}

type program = rule list

(** Convenience constructors. *)

val atom : string -> term list -> atom
val rule : atom -> atom list -> rule

exception Ill_formed of string

(** [validate ~edb program] checks safety, consistent predicate arities
    (across rules and against the EDB arities given as
    [(name, arity)]), and that no rule head redefines an EDB predicate.
    Returns the set of IDB predicates with their arities.
    @raise Ill_formed otherwise. *)
val validate : edb:(string * int) list -> program -> (string * int) list

(** [idb_predicates program] — names of predicates defined by rules. *)
val idb_predicates : program -> string list

val pp_atom : Format.formatter -> atom -> unit
val pp_rule : Format.formatter -> rule -> unit
val pp_program : Format.formatter -> program -> unit
