type literal =
  | Pos of Syntax.atom
  | Neg of Syntax.atom

type rule = {
  head : Syntax.atom;
  body : literal list;
}

type program = rule list

exception Ill_formed of string

let ill_formed fmt = Format.kasprintf (fun s -> raise (Ill_formed s)) fmt

let atom_vars (a : Syntax.atom) =
  List.filter_map
    (function Syntax.Var x -> Some x | Syntax.Val _ -> None)
    a.args

let idb_predicates (program : program) =
  List.sort_uniq String.compare
    (List.map (fun r -> r.head.Syntax.pred) program)

let validate ~edb (program : program) =
  let idb = idb_predicates program in
  List.iter
    (fun p ->
      if List.mem_assoc p edb then
        ill_formed "rule head redefines EDB predicate %s" p)
    idb;
  let arities : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter (fun (p, k) -> Hashtbl.replace arities p k) edb;
  let check_atom (a : Syntax.atom) =
    let k = List.length a.args in
    match Hashtbl.find_opt arities a.pred with
    | None -> Hashtbl.replace arities a.pred k
    | Some k' ->
      if k <> k' then
        ill_formed "predicate %s used with arities %d and %d" a.pred k' k
  in
  List.iter
    (fun r ->
      check_atom r.head;
      List.iter (function Pos a | Neg a -> check_atom a) r.body;
      List.iter
        (function
          | Pos a | Neg a ->
            if not (List.mem_assoc a.Syntax.pred edb || List.mem a.Syntax.pred idb)
            then ill_formed "unknown predicate %s" a.Syntax.pred)
        r.body;
      let positive_vars =
        List.concat_map
          (function Pos a -> atom_vars a | Neg _ -> [])
          r.body
      in
      let require_bound where x =
        if not (List.mem x positive_vars) then
          ill_formed "unsafe rule: %s variable %s not bound positively" where x
      in
      List.iter (require_bound "head") (atom_vars r.head);
      List.iter
        (function
          | Neg a -> List.iter (require_bound "negated") (atom_vars a)
          | Pos _ -> ())
        r.body)
    program;
  idb

let stratify ~edb (program : program) =
  let idb = validate ~edb program in
  let stratum : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter (fun p -> Hashtbl.replace stratum p 0) idb;
  let get p = match Hashtbl.find_opt stratum p with Some s -> s | None -> 0 in
  let n = List.length idb in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed do
    changed := false;
    incr rounds;
    if !rounds > (n * n) + n + 2 then
      ill_formed "program is not stratifiable (recursion through negation)";
    List.iter
      (fun r ->
        let h = r.head.Syntax.pred in
        List.iter
          (fun lit ->
            let lower, strict =
              match lit with
              | Pos a -> (a.Syntax.pred, false)
              | Neg a -> (a.Syntax.pred, true)
            in
            if List.mem lower idb then begin
              let need = get lower + if strict then 1 else 0 in
              if get h < need then begin
                if need > n then
                  ill_formed
                    "program is not stratifiable (recursion through negation)";
                Hashtbl.replace stratum h need;
                changed := true
              end
            end)
          r.body)
      program
  done;
  List.map (fun p -> (p, get p)) idb

(* literal matching, nulls as values (as in Eval) *)
let match_tuple env (args : Syntax.term list) (t : Tuple.t) =
  let rec go env i = function
    | [] -> Some env
    | Syntax.Val v :: rest ->
      if Value.equal v t.(i) then go env (i + 1) rest else None
    | Syntax.Var x :: rest ->
      (match List.assoc_opt x env with
       | Some v -> if Value.equal v t.(i) then go env (i + 1) rest else None
       | None -> go ((x, t.(i)) :: env) (i + 1) rest)
  in
  if List.length args <> Tuple.arity t then None else go env 0 args

let ground_atom env (a : Syntax.atom) =
  Array.of_list
    (List.map
       (function
         | Syntax.Val v -> v
         | Syntax.Var x ->
           (match List.assoc_opt x env with
            | Some v -> v
            | None -> assert false (* safety *)))
       a.args)

let run db (program : program) pred =
  let schema = Database.schema db in
  let edb =
    List.map
      (fun (d : Schema.relation_decl) -> (d.name, List.length d.attributes))
      (Schema.relations schema)
  in
  let strata = stratify ~edb program in
  let idb = List.map fst strata in
  if not (List.mem pred idb) then
    ill_formed "%s is not an IDB predicate of the program" pred;
  let arity_of p =
    let probe =
      List.find_map
        (fun r ->
          if r.head.Syntax.pred = p then Some (List.length r.head.Syntax.args)
          else None)
        program
    in
    match probe with Some k -> k | None -> assert false
  in
  let full : (string, Relation.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter (fun p -> Hashtbl.replace full p (Relation.empty (arity_of p))) idb;
  let relation_of p =
    match Hashtbl.find_opt full p with
    | Some r -> r
    | None -> Database.relation db p
  in
  (* positive literals extend the environments; negative ones filter *)
  let fire_rule (r : rule) =
    let step envs = function
      | Pos a ->
        List.concat_map
          (fun env ->
            Relation.fold
              (fun t acc ->
                match match_tuple env a.Syntax.args t with
                | Some env' -> env' :: acc
                | None -> acc)
              (relation_of a.Syntax.pred) [])
          envs
      | Neg a ->
        List.filter
          (fun env ->
            not (Relation.mem (ground_atom env a) (relation_of a.Syntax.pred)))
          envs
    in
    (* evaluate positive literals first so negated variables are bound *)
    let pos, neg = List.partition (function Pos _ -> true | Neg _ -> false) r.body in
    let envs = List.fold_left step [ [] ] (pos @ neg) in
    List.map (fun env -> ground_atom env r.head) envs
  in
  let max_stratum = List.fold_left (fun m (_, s) -> max m s) 0 strata in
  for level = 0 to max_stratum do
    let rules_here =
      List.filter (fun r -> List.assoc r.head.Syntax.pred strata = level) program
    in
    (* naive iteration to fixpoint within the stratum *)
    let rec loop () =
      let grew = ref false in
      List.iter
        (fun r ->
          let derived = fire_rule r in
          let p = r.head.Syntax.pred in
          let current = Hashtbl.find full p in
          let updated =
            List.fold_left
              (fun rel t ->
                if Relation.mem t rel then rel
                else begin
                  grew := true;
                  Relation.add t rel
                end)
              current derived
          in
          Hashtbl.replace full p updated)
        rules_here;
      if !grew then loop ()
    in
    loop ()
  done;
  Hashtbl.find full pred

let program_consts (program : program) =
  let add c acc =
    if List.exists (Value.equal_const c) acc then acc else c :: acc
  in
  let term_consts acc = function
    | Syntax.Val (Value.Const c) -> add c acc
    | Syntax.Val (Value.Null _) | Syntax.Var _ -> acc
  in
  let atom_consts acc (a : Syntax.atom) =
    List.fold_left term_consts acc a.args
  in
  List.fold_left
    (fun acc r ->
      List.fold_left
        (fun acc lit -> match lit with Pos a | Neg a -> atom_consts acc a)
        (atom_consts acc r.head) r.body)
    [] program

let certain_exact db program pred =
  Incdb_certain.Certainty.cert_with_nulls
    ~run:(fun d -> run d program pred)
    ~query_consts:(program_consts program) db
