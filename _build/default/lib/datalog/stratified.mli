(** Stratified Datalog: negation allowed, but not through recursion.

    Negation breaks monotonicity, so — unlike the positive fragment —
    naive fixpoint evaluation of a stratified program is {e not} its
    certain answers; it is exactly the naive evaluation of Section 4.1
    (nulls as values), complete with the false positives/negatives the
    paper catalogues, and the usual machinery (exact enumeration, the
    0–1 law) applies on top via {!certain_exact}.  The test suite
    demonstrates the divergence on the complement of transitive
    closure. *)

type literal =
  | Pos of Syntax.atom
  | Neg of Syntax.atom

type rule = {
  head : Syntax.atom;
  body : literal list;
}

type program = rule list

exception Ill_formed of string

(** [stratify ~edb program] computes a stratum number for every IDB
    predicate such that positive dependencies stay within a stratum or
    below and negative dependencies point strictly below.
    @raise Ill_formed on unsafe rules (head or negated variables not
    bound positively), arity clashes, EDB redefinition, or recursion
    through negation. *)
val stratify : edb:(string * int) list -> program -> (string * int) list

(** [run db program pred] — bottom-up evaluation stratum by stratum;
    negated atoms are tested against the completed lower strata
    (negation as failure, nulls as values).
    @raise Ill_formed per {!stratify}. *)
val run : Database.t -> program -> string -> Relation.t

(** [certain_exact db program pred] — cert⊥ of the stratified query by
    canonical world enumeration (exponential). *)
val certain_exact : Database.t -> program -> string -> Relation.t
