exception Parse_error of string

let parse_error fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

type token =
  | TIdent of string
  | TInt of int
  | TStr of string
  | TNull of int
  | TLparen
  | TRparen
  | TComma
  | TDot
  | TTurnstile
  | TEof

let pp_token ppf = function
  | TIdent s -> Format.fprintf ppf "ident(%s)" s
  | TInt n -> Format.pp_print_int ppf n
  | TStr s -> Format.fprintf ppf "'%s'" s
  | TNull n -> Format.fprintf ppf "_%d" n
  | TLparen -> Format.pp_print_char ppf '('
  | TRparen -> Format.pp_print_char ppf ')'
  | TComma -> Format.pp_print_char ppf ','
  | TDot -> Format.pp_print_char ppf '.'
  | TTurnstile -> Format.pp_print_string ppf ":-"
  | TEof -> Format.pp_print_string ppf "<eof>"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let rec scan pos acc =
    if pos >= n then List.rev (TEof :: acc)
    else
      match input.[pos] with
      | ' ' | '\t' | '\n' | '\r' -> scan (pos + 1) acc
      | '%' ->
        let rec eol i = if i < n && input.[i] <> '\n' then eol (i + 1) else i in
        scan (eol pos) acc
      | '(' -> scan (pos + 1) (TLparen :: acc)
      | ')' -> scan (pos + 1) (TRparen :: acc)
      | ',' -> scan (pos + 1) (TComma :: acc)
      | '.' -> scan (pos + 1) (TDot :: acc)
      | ':' ->
        if pos + 1 < n && input.[pos + 1] = '-' then
          scan (pos + 2) (TTurnstile :: acc)
        else parse_error "expected ':-' at offset %d" pos
      | '\'' ->
        let rec close i =
          if i >= n then parse_error "unterminated string at offset %d" pos
          else if input.[i] = '\'' then i
          else close (i + 1)
        in
        let stop = close (pos + 1) in
        scan (stop + 1)
          (TStr (String.sub input (pos + 1) (stop - pos - 1)) :: acc)
      | c when is_digit c || c = '-' ->
        let rec stop i =
          if i < n && is_digit input.[i] then stop (i + 1) else i
        in
        let e = stop (pos + 1) in
        let text = String.sub input pos (e - pos) in
        (match int_of_string_opt text with
         | Some v -> scan e (TInt v :: acc)
         | None -> parse_error "bad number %s" text)
      | c when is_ident_start c ->
        let rec stop i =
          if i < n && is_ident_char input.[i] then stop (i + 1) else i
        in
        let e = stop pos in
        let word = String.sub input pos (e - pos) in
        let tok =
          if String.length word >= 2 && word.[0] = '_' then
            match int_of_string_opt (String.sub word 1 (String.length word - 1))
            with
            | Some label -> TNull label
            | None -> TIdent word
          else TIdent word
        in
        scan e (tok :: acc)
      | c -> parse_error "illegal character %C at offset %d" c pos
  in
  scan 0 []

type state = { mutable tokens : token list }

let peek st = match st.tokens with [] -> TEof | t :: _ -> t

let advance st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let expect st t =
  if peek st = t then advance st
  else parse_error "expected %a, found %a" pp_token t pp_token (peek st)

let parse_term st =
  match peek st with
  | TIdent x ->
    advance st;
    Syntax.Var x
  | TInt n ->
    advance st;
    Syntax.Val (Value.int n)
  | TStr s ->
    advance st;
    Syntax.Val (Value.str s)
  | TNull label ->
    advance st;
    Syntax.Val (Value.null label)
  | t -> parse_error "expected a term, found %a" pp_token t

let parse_atom st =
  match peek st with
  | TIdent pred ->
    advance st;
    expect st TLparen;
    let rec args acc =
      let t = parse_term st in
      if peek st = TComma then begin
        advance st;
        args (t :: acc)
      end
      else List.rev (t :: acc)
    in
    let terms = args [] in
    expect st TRparen;
    Syntax.atom pred terms
  | t -> parse_error "expected a predicate, found %a" pp_token t

let parse_clause st =
  let head = parse_atom st in
  match peek st with
  | TDot ->
    advance st;
    Syntax.rule head []
  | TTurnstile ->
    advance st;
    let rec body acc =
      let a = parse_atom st in
      if peek st = TComma then begin
        advance st;
        body (a :: acc)
      end
      else List.rev (a :: acc)
    in
    let atoms = body [] in
    expect st TDot;
    Syntax.rule head atoms
  | t -> parse_error "expected '.' or ':-', found %a" pp_token t

let parse input =
  let st = { tokens = tokenize input } in
  let rec clauses acc =
    match peek st with
    | TEof -> List.rev acc
    | _ -> clauses (parse_clause st :: acc)
  in
  clauses []
