(** Concrete syntax for Datalog programs.

    {v
    program ::= clause*
    clause  ::= atom '.'                          a fact
              | atom ':-' atom (',' atom)* '.'    a rule
    atom    ::= ident '(' term (',' term)* ')'
    term    ::= ident          a variable
              | integer        an Int constant
              | '...' quoted   a Str constant
              | '_' digits     a marked null (in facts)
    v}

    [%] starts a comment running to the end of the line.

    Example:

    {v
    % transitive closure
    path(x, y) :- edge(x, y).
    path(x, z) :- edge(x, y), path(y, z).
    v} *)

exception Parse_error of string

(** @raise Parse_error on syntax errors. *)
val parse : string -> Syntax.program
