exception Eval_error of string

let eval_error fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

type env = (string * Value.t) list

(* extend [env] so that the atom's arguments match the tuple literally
   (nulls are values: marked nulls only match themselves) *)
let match_tuple env (args : Syntax.term list) (t : Tuple.t) : env option =
  let rec go env i = function
    | [] -> Some env
    | Syntax.Val v :: rest ->
      if Value.equal v t.(i) then go env (i + 1) rest else None
    | Syntax.Var x :: rest ->
      (match List.assoc_opt x env with
       | Some v -> if Value.equal v t.(i) then go env (i + 1) rest else None
       | None -> go ((x, t.(i)) :: env) (i + 1) rest)
  in
  if List.length args <> Tuple.arity t then None else go env 0 args

let instantiate_head env (head : Syntax.atom) : Tuple.t =
  Array.of_list
    (List.map
       (function
         | Syntax.Val v -> v
         | Syntax.Var x ->
           (match List.assoc_opt x env with
            | Some v -> v
            | None -> assert false (* ruled out by safety *)))
       head.args)

let run_all db program =
  let schema = Database.schema db in
  let edb =
    List.map
      (fun (d : Schema.relation_decl) -> (d.name, List.length d.attributes))
      (Schema.relations schema)
  in
  let idb = Syntax.validate ~edb program in
  let full : (string, Relation.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter (fun (p, k) -> Hashtbl.replace full p (Relation.empty k)) idb;
  let relation_of p =
    match Hashtbl.find_opt full p with
    | Some r -> r
    | None -> Database.relation db p
  in
  let is_idb p = List.mem_assoc p idb in
  (* match the body left to right; [delta_at] forces one designated body
     position to range over the delta instead of the full instance *)
  let fire_rule (r : Syntax.rule) ~delta ~delta_at =
    let rec go envs i = function
      | [] -> envs
      | (a : Syntax.atom) :: rest ->
        let rel =
          if Some i = delta_at then
            match Hashtbl.find_opt delta a.pred with
            | Some d -> d
            | None -> Relation.empty (List.length a.args)
          else relation_of a.pred
        in
        let envs' =
          List.concat_map
            (fun env ->
              Relation.fold
                (fun t acc ->
                  match match_tuple env a.args t with
                  | Some env' -> env' :: acc
                  | None -> acc)
                rel [])
            envs
        in
        go envs' (i + 1) rest
    in
    List.map (fun env -> instantiate_head env r.head) (go [ [] ] 0 r.body)
  in
  (* first round: fire every rule against the EDB (IDB still empty) *)
  let add_new acc_tbl p tuples =
    let known = Hashtbl.find full p in
    let fresh =
      List.filter (fun t -> not (Relation.mem t known)) tuples
    in
    if fresh <> [] then begin
      let current =
        match Hashtbl.find_opt acc_tbl p with
        | Some r -> r
        | None -> Relation.empty (Relation.arity known)
      in
      Hashtbl.replace acc_tbl p
        (List.fold_left (fun r t -> Relation.add t r) current fresh)
    end
  in
  let initial_delta = Hashtbl.create 8 in
  List.iter
    (fun (r : Syntax.rule) ->
      add_new initial_delta r.head.pred (fire_rule r ~delta:initial_delta ~delta_at:None))
    program;
  let commit delta =
    Hashtbl.iter
      (fun p d -> Hashtbl.replace full p (Relation.union (Hashtbl.find full p) d))
      delta
  in
  commit initial_delta;
  (* semi-naive iterations: every firing must read at least one delta *)
  let rec loop delta rounds =
    if rounds > 100_000 then eval_error "fixpoint did not converge";
    if Hashtbl.length delta = 0 then ()
    else begin
      let next = Hashtbl.create 8 in
      List.iter
        (fun (r : Syntax.rule) ->
          List.iteri
            (fun i (a : Syntax.atom) ->
              if is_idb a.pred && Hashtbl.mem delta a.pred then
                add_new next r.head.pred
                  (fire_rule r ~delta ~delta_at:(Some i)))
            r.body)
        program;
      commit next;
      loop next (rounds + 1)
    end
  in
  loop initial_delta 0;
  List.map (fun (p, _) -> (p, Hashtbl.find full p)) idb

let all_idb db program = run_all db program

let run db program pred =
  match List.assoc_opt pred (run_all db program) with
  | Some r -> r
  | None -> eval_error "%s is not an IDB predicate of the program" pred

let program_consts (program : Syntax.program) =
  let add c acc =
    if List.exists (Value.equal_const c) acc then acc else c :: acc
  in
  let term_consts acc = function
    | Syntax.Val (Value.Const c) -> add c acc
    | Syntax.Val (Value.Null _) | Syntax.Var _ -> acc
  in
  List.fold_left
    (fun acc (r : Syntax.rule) ->
      List.fold_left term_consts
        (List.fold_left term_consts acc r.head.args)
        (List.concat_map (fun (a : Syntax.atom) -> a.args) r.body))
    [] program

let certain_exact db program pred =
  Incdb_certain.Certainty.cert_with_nulls
    ~run:(fun d -> run d program pred)
    ~query_consts:(program_consts program) db

let transitive_closure ~edge ~path =
  let x = Syntax.Var "x" and y = Syntax.Var "y" and z = Syntax.Var "z" in
  [ Syntax.rule (Syntax.atom path [ x; y ]) [ Syntax.atom edge [ x; y ] ];
    Syntax.rule
      (Syntax.atom path [ x; z ])
      [ Syntax.atom edge [ x; y ]; Syntax.atom path [ y; z ] ] ]
