type term =
  | Var of string
  | Val of Value.t

type atom = {
  pred : string;
  args : term list;
}

type rule = {
  head : atom;
  body : atom list;
}

type program = rule list

let atom pred args = { pred; args }
let rule head body = { head; body }

exception Ill_formed of string

let ill_formed fmt = Format.kasprintf (fun s -> raise (Ill_formed s)) fmt

let atom_vars a =
  List.filter_map (function Var x -> Some x | Val _ -> None) a.args

let idb_predicates program =
  List.sort_uniq String.compare (List.map (fun r -> r.head.pred) program)

let validate ~edb program =
  let idb = idb_predicates program in
  (* no rule may redefine an EDB predicate *)
  List.iter
    (fun p ->
      if List.mem_assoc p edb then
        ill_formed "rule head redefines EDB predicate %s" p)
    idb;
  (* collect arities, checking consistency *)
  let arities : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter (fun (p, k) -> Hashtbl.replace arities p k) edb;
  let check_atom a =
    let k = List.length a.args in
    match Hashtbl.find_opt arities a.pred with
    | None -> Hashtbl.replace arities a.pred k
    | Some k' ->
      if k <> k' then
        ill_formed "predicate %s used with arities %d and %d" a.pred k' k
  in
  List.iter
    (fun r ->
      check_atom r.head;
      List.iter check_atom r.body;
      (* body predicates must be known: either EDB or defined by rules *)
      List.iter
        (fun a ->
          if not (List.mem_assoc a.pred edb || List.mem a.pred idb) then
            ill_formed "unknown predicate %s in a rule body" a.pred)
        r.body;
      (* safety *)
      let body_vars = List.concat_map atom_vars r.body in
      List.iter
        (fun x ->
          if not (List.mem x body_vars) then
            ill_formed "unsafe rule: head variable %s not bound in the body" x)
        (atom_vars r.head))
    program;
  List.map (fun p -> (p, Hashtbl.find arities p)) idb

let pp_term ppf = function
  | Var x -> Format.pp_print_string ppf x
  | Val v -> Value.pp ppf v

let pp_atom ppf a =
  Format.fprintf ppf "%s(%a)" a.pred
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       pp_term)
    a.args

let pp_rule ppf r =
  match r.body with
  | [] -> Format.fprintf ppf "%a." pp_atom r.head
  | body ->
    Format.fprintf ppf "%a :- %a." pp_atom r.head
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
         pp_atom)
      body

let pp_program ppf program =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_rule ppf program
