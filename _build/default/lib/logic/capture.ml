let fresh_counter = ref 0

let fresh_var () =
  incr fresh_counter;
  Printf.sprintf "$cap%d" !fresh_counter

let all_const terms = Fo.conj (List.map (fun t -> Fo.Is_const t) terms)

(* Tuple unifiability x̄ ⇑ ȳ, expressed in Boolean FO.

   A valuation with v(x̄) = v(ȳ) forces v(xᵢ) = v(yᵢ) for each i, and
   positions holding literally equal values (in particular repeated
   nulls) are forced equal too.  Model each index i as a "pair node"
   {xᵢ, yᵢ} (internally forced equal); two pair nodes are linked when
   any of their four values coincide.  The tuples unify iff no chain of
   linked pair nodes connects two distinct constants.  Since the arity
   k is fixed, the chains can be enumerated: all sequences of distinct
   indices, of length 1 to k. *)
let unifiable_tuples xs ys =
  let k = List.length xs in
  let value side i = if side = 0 then List.nth xs i else List.nth ys i in
  let linked i j =
    Fo.disj
      [ Fo.Eq (value 0 i, value 0 j); Fo.Eq (value 0 i, value 1 j);
        Fo.Eq (value 1 i, value 0 j); Fo.Eq (value 1 i, value 1 j) ]
  in
  (* all sequences of distinct indices, length 1..k *)
  let rec paths_from used path len =
    let here = [ List.rev path ] in
    if len >= k then here
    else
      here
      @ List.concat_map
          (fun i ->
            if List.mem i used then []
            else paths_from (i :: used) (i :: path) (len + 1))
          (List.init k (fun i -> i))
  in
  let all_paths =
    List.concat_map
      (fun i -> paths_from [ i ] [ i ] 1)
      (List.init k (fun i -> i))
  in
  let conflict path =
    let rec edges = function
      | i :: (j :: _ as rest) -> linked i j :: edges rest
      | [ _ ] | [] -> []
    in
    let first = List.hd path and last = List.nth path (List.length path - 1) in
    let endpoint_clash =
      Fo.disj
        (List.concat_map
           (fun a ->
             List.map
               (fun b ->
                 Fo.conj
                   [ Fo.Is_const (value a first); Fo.Is_const (value b last);
                     Fo.Not (Fo.Eq (value a first, value b last)) ])
               [ 0; 1 ])
           [ 0; 1 ])
    in
    Fo.conj (edges path @ [ endpoint_clash ])
  in
  Fo.Not (Fo.disj (List.map conflict all_paths))

(* [tr φ] returns the pair (ψt, ψf); ψu is derived as ¬ψt ∧ ¬ψf. *)
let rec tr (mixed : Semantics.mixed) (phi : Fo.t) : Fo.t * Fo.t =
  match phi with
  | Fo.Atom (name, terms) ->
    (match mixed.rel_sem name with
     | Semantics.Bool -> (phi, Fo.Not phi)
     | Semantics.Unif ->
       let ys = List.map (fun _ -> fresh_var ()) terms in
       let yterms = List.map (fun y -> Fo.Var y) ys in
       let some_unifiable =
         Fo.exists_many ys
           (Fo.And (Fo.Atom (name, yterms), unifiable_tuples terms yterms))
       in
       (phi, Fo.Not some_unifiable)
     | Semantics.Nullfree ->
       let guard = all_const terms in
       (Fo.And (phi, guard), Fo.And (Fo.Not phi, guard)))
  | Fo.Eq (t1, t2) ->
    (match mixed.eq_sem with
     | Semantics.Bool -> (phi, Fo.Not phi)
     | Semantics.Unif ->
       let guard = Fo.And (Fo.Is_const t1, Fo.Is_const t2) in
       (phi, Fo.And (Fo.Not phi, guard))
     | Semantics.Nullfree ->
       let guard = Fo.And (Fo.Is_const t1, Fo.Is_const t2) in
       (Fo.And (phi, guard), Fo.And (Fo.Not phi, guard)))
  | Fo.Lt (t1, t2) ->
    (match mixed.eq_sem with
     | Semantics.Bool -> (phi, Fo.Not phi)
     | Semantics.Unif ->
       (* t iff both constants and ordered; f iff (both constants and
          not ordered) or the terms are literally equal (x < x never
          holds, even for the same unknown) *)
       let guard = Fo.And (Fo.Is_const t1, Fo.Is_const t2) in
       (Fo.And (phi, guard),
        Fo.Or (Fo.And (Fo.Not phi, guard), Fo.Eq (t1, t2)))
     | Semantics.Nullfree ->
       let guard = Fo.And (Fo.Is_const t1, Fo.Is_const t2) in
       (Fo.And (phi, guard), Fo.And (Fo.Not phi, guard)))
  | Fo.Is_const _ | Fo.Is_null _ ->
    (* const/null tests are two-valued under every semantics *)
    (phi, Fo.Not phi)
  | Fo.Tru -> (Fo.Tru, Fo.Fls)
  | Fo.Fls -> (Fo.Fls, Fo.Tru)
  | Fo.Not f ->
    let t, f' = tr mixed f in
    (f', t)
  | Fo.And (f, g) ->
    let tf, ff = tr mixed f in
    let tg, fg = tr mixed g in
    (Fo.And (tf, tg), Fo.Or (ff, fg))
  | Fo.Or (f, g) ->
    let tf, ff = tr mixed f in
    let tg, fg = tr mixed g in
    (Fo.Or (tf, tg), Fo.And (ff, fg))
  | Fo.Exists (x, f) ->
    let tf, ff = tr mixed f in
    (Fo.Exists (x, tf), Fo.Forall (x, ff))
  | Fo.Forall (x, f) ->
    let tf, ff = tr mixed f in
    (Fo.Forall (x, tf), Fo.Exists (x, ff))
  | Fo.Assert f ->
    (* ↑φ is t iff φ is t, and f otherwise (Theorem 5.5) *)
    let tf, _ = tr mixed f in
    (tf, Fo.Not tf)

let truth_formula mixed phi tau =
  let t, f = tr mixed phi in
  match tau with
  | Kleene.T -> t
  | Kleene.F -> f
  | Kleene.U -> Fo.And (Fo.Not t, Fo.Not f)

let is_true mixed phi = truth_formula mixed phi Kleene.T
