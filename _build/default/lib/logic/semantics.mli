(** Many-valued semantics for first-order formulae (Section 5.1–5.2).

    A {e mixed semantics} chooses, independently for every base relation
    and for equality, one of the three atom semantics of the paper:

    - {b Bool} — the standard two-valued semantics (12): a relational
      atom is t iff the tuple is literally in the relation; equality is
      literal equality of domain elements (so ⊥ = ⊥ is t for the same
      marked null);
    - {b Unif} — the unification semantics (13): R(ā) is f only when no
      tuple of R unifies with ā; a = b is f only for distinct constants
      (this is the semantics with correctness guarantees, Cor. 5.2);
    - {b Nullfree} — the SQL comparison semantics (14): any atom
      touching a null is u.

    SQL's own semantics (15) is the mix Bool for relations and Nullfree
    for equality.  Connectives are evaluated in Kleene's logic; ↑ is the
    assertion operator; quantifiers range over the active domain of the
    database (equations (10) and (11)). *)

type tag =
  | Bool
  | Unif
  | Nullfree

type mixed = {
  rel_sem : string -> tag;
  eq_sem : tag;
}

val all_bool : mixed
val all_unif : mixed
val all_nullfree : mixed

(** SQL's mixed semantics (15): Bool relations, Nullfree equality. *)
val sql : mixed

(** Variable assignments. *)
type env = (string * Value.t) list

exception Eval_error of string

(** [eval mixed db env φ] is ⟦φ⟧_{D,ā} in Kleene's logic.

    @raise Eval_error on unbound variables or unknown relations. *)
val eval : mixed -> Database.t -> env -> Fo.t -> Kleene.t

(** [eval_bool db env φ] is two-valued evaluation: [eval all_bool]
    collapsed to [bool] ([u] is unreachable under [all_bool]).
    This is standard Boolean FO with nulls treated as values. *)
val eval_bool : Database.t -> env -> Fo.t -> bool

(** [answers mixed db φ] pairs every assignment of the free variables of
    φ (ranging over the active domain, in the order of
    {!Fo.free_vars}) with its truth value.  This materialises the query
    Q_φ of Section 5.2 together with the f/u distinctions. *)
val answers : mixed -> Database.t -> Fo.t -> (Tuple.t * Kleene.t) list

(** [certain_true mixed db φ] is the relation of tuples on which φ
    evaluates to t — SQL's answer set for SELECT-queries. *)
val certain_true : mixed -> Database.t -> Fo.t -> Relation.t
