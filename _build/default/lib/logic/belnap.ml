type t =
  | T
  | F
  | N
  | B

let values = [ T; F; N; B ]

let equal a b = a = b

let top = T
let bot = F

let neg = function T -> F | F -> T | N -> N | B -> B

(* ∧ is the meet of the truth lattice f < n, b < t (n and b
   incomparable, with meet f and join t) *)
let conj a b =
  match a, b with
  | F, _ | _, F -> F
  | T, x | x, T -> x
  | N, N -> N
  | B, B -> B
  | N, B | B, N -> F

let disj a b =
  match a, b with
  | T, _ | _, T -> T
  | F, x | x, F -> x
  | N, N -> N
  | B, B -> B
  | N, B | B, N -> T

(* knowledge order: n below everything, b above everything *)
let knowledge_le a b =
  match a, b with
  | N, _ -> true
  | _, B -> true
  | T, T | F, F -> true
  | (T | F | B), _ -> false

let least = Some N

let kmeet a b =
  if equal a b then a
  else
    match a, b with
    | B, x | x, B -> x
    | _, _ -> N

let kjoin a b =
  if equal a b then a
  else
    match a, b with
    | N, x | x, N -> x
    | _, _ -> B

let pp ppf v =
  Format.pp_print_string ppf
    (match v with T -> "t" | F -> "f" | N -> "n" | B -> "b")

let to_string v = Format.asprintf "%a" pp v

let of_kleene = function
  | Kleene.T -> T
  | Kleene.F -> F
  | Kleene.U -> N

let to_kleene_opt = function
  | T -> Some Kleene.T
  | F -> Some Kleene.F
  | N -> Some Kleene.U
  | B -> None
