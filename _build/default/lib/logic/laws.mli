(** Exhaustive law checking for finite propositional logics.

    Used to verify the algebraic facts the paper relies on: Kleene's
    logic is distributive and idempotent and respects the knowledge
    order; L6v is neither distributive nor idempotent; the maximal
    distributive and idempotent sublogic of L6v is L3v (Theorem 5.3);
    database optimisations require distributivity and idempotency. *)

(** A finite logic presented concretely: carrier, designated top/bottom
    and the three connectives. *)
type 'a logic = {
  values : 'a list;
  equal : 'a -> 'a -> bool;
  top : 'a;
  bot : 'a;
  neg : 'a -> 'a;
  conj : 'a -> 'a -> 'a;
  disj : 'a -> 'a -> 'a;
}

(** [of_module (module L)] packages a {!Truth.S} implementation. *)
val of_module : (module Truth.S with type t = 'a) -> 'a logic

val idempotent : 'a logic -> bool

(** Both distributivity laws:
    a∧(b∨c) = (a∧b)∨(a∧c) and a∨(b∧c) = (a∨b)∧(a∨c). *)
val distributive : 'a logic -> bool

val commutative : 'a logic -> bool
val associative : 'a logic -> bool

(** De Morgan: ¬(a∧b) = ¬a∨¬b and dually; plus involution ¬¬a = a. *)
val de_morgan : 'a logic -> bool

(** [weakly_idempotent l] checks a∨a∨a = a∨a and a∧a∧a = a∧a — the
    hypothesis under which Boolean FO captures a many-valued logic
    (remark after Theorem 5.4). *)
val weakly_idempotent : 'a logic -> bool

(** [monotone ~le l] checks that ∧, ∨ and ¬ are monotone w.r.t. the
    given (knowledge) order — condition (2) of Theorem 5.1. *)
val monotone : le:('a -> 'a -> bool) -> 'a logic -> bool

(** [sublogics l] lists all subsets of the carrier containing [top] and
    [bot] that are closed under ¬, ∧ and ∨ — each induces a sublogic. *)
val sublogics : 'a logic -> 'a list list

(** [restrict l carrier] is the logic induced on a closed subset. *)
val restrict : 'a logic -> 'a list -> 'a logic

(** [maximal_sublogics ~satisfying l] lists the closed carriers whose
    induced logics satisfy the predicate and that are maximal (no closed
    superset also satisfies it). *)
val maximal_sublogics :
  satisfying:('a logic -> bool) -> 'a logic -> 'a list list
