let assert_ = function
  | Kleene.T -> Kleene.T
  | Kleene.F | Kleene.U -> Kleene.F

let assert6 = function
  | Sixv.T -> Sixv.T
  | Sixv.F | Sixv.S | Sixv.ST | Sixv.SF | Sixv.U -> Sixv.F

let knowledge_violation =
  (* u ⪯ t but ↑u = f is not ⪯ ↑t = t *)
  let u = Kleene.U and t = Kleene.T in
  if
    Kleene.knowledge_le u t
    && not (Kleene.knowledge_le (assert_ u) (assert_ t))
  then Some (u, t)
  else None
