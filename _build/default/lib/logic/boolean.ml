type t =
  | T
  | F

let values = [ T; F ]

let equal a b = a = b

let top = T
let bot = F

let neg = function T -> F | F -> T

let conj a b = match a, b with T, T -> T | _, _ -> F

let disj a b = match a, b with F, F -> F | _, _ -> T

(* In L2v both values are fully informative: the knowledge order is flat. *)
let knowledge_le a b = equal a b

let least = None

let pp ppf = function
  | T -> Format.pp_print_string ppf "t"
  | F -> Format.pp_print_string ppf "f"

let to_string v = Format.asprintf "%a" pp v

let of_bool b = if b then T else F
let to_bool = function T -> true | F -> false
