lib/logic/boolean.ml: Format
