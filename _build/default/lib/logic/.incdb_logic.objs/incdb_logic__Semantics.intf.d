lib/logic/semantics.mli: Database Fo Kleene Relation Tuple Value
