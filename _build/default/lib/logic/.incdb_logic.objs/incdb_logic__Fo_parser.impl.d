lib/logic/fo_parser.ml: Fo Format List String Value
