lib/logic/semantics.ml: Array Assertion Database Fo Format Kleene List Relation Tuple Value
