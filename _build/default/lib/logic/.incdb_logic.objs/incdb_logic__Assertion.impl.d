lib/logic/assertion.ml: Kleene Sixv
