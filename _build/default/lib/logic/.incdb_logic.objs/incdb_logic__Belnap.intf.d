lib/logic/belnap.mli: Kleene Truth
