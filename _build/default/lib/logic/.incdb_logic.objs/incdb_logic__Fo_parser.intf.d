lib/logic/fo_parser.mli: Fo
