lib/logic/boolean.mli: Truth
