lib/logic/fo.ml: Format List Printf String Value
