lib/logic/capture.ml: Fo Kleene List Printf Semantics
