lib/logic/bridge.ml: Algebra Array Condition Fo Format List Printf Schema String Value
