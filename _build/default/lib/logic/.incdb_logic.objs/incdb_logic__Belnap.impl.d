lib/logic/belnap.ml: Format Kleene
