lib/logic/bridge.mli: Algebra Fo Schema
