lib/logic/assertion.mli: Kleene Sixv
