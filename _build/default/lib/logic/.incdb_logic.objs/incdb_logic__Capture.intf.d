lib/logic/capture.mli: Fo Kleene Semantics
