lib/logic/sixv.mli: Kleene Truth
