lib/logic/laws.mli: Truth
