lib/logic/kleene.mli: Truth
