lib/logic/fo.mli: Format Value
