lib/logic/laws.ml: List Truth
