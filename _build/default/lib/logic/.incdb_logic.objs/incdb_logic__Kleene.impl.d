lib/logic/kleene.ml: Format
