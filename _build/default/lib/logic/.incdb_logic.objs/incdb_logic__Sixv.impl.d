lib/logic/sixv.ml: Format Kleene List
