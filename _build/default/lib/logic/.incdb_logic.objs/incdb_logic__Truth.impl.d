lib/logic/truth.ml: Format
