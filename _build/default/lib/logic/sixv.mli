(** The six-valued epistemic logic L6v of Section 5.2.

    Truth values are the six maximally consistent theories of the
    epistemic modalities K(α), P(α), K(¬α), P(¬α) over possible-world
    interpretations (W, t, f):

    - [T]  — α true in all worlds;
    - [F]  — α false in all worlds;
    - [S]  — α true in some worlds and false in others ("sometimes");
    - [ST] — true in some world, unknown whether in all ("sometimes true");
    - [SF] — false in some world, unknown whether in all ("sometimes false");
    - [U]  — no information.

    Rather than hard-coding truth tables, this module {e derives} them
    from the possible-world reading, exactly as the paper prescribes:
    each value denotes a set of possible "world classes" of α
    (all-true / mixed / all-false); connectives act on classes; the
    result is the most general of the six values consistent with the
    outcome (see {!classes} and {!of_classes}).  L6v is neither
    distributive nor idempotent — e.g. [conj S S = SF] — and its
    maximal distributive and idempotent sublogic is Kleene's L3v
    (Theorem 5.3, verified exhaustively in the test suite). *)

type t =
  | T
  | F
  | S
  | ST
  | SF
  | U

include Truth.S with type t := t

(** A class of complete scenarios for a formula over a world set. *)
type world_class =
  | All_true
  | Mixed
  | All_false

(** The set of world classes a truth value admits; e.g.
    [classes ST = [All_true; Mixed]]. *)
val classes : t -> world_class list

(** [of_classes cs] is the most specific of the six values whose class
    set contains [cs]; the non-representable set
    [{All_true; All_false}] yields [U] (the most general consistent
    value, per the paper's "choose the most general one" rule).
    @raise Invalid_argument on the empty set. *)
val of_classes : world_class list -> t

(** Embedding of Kleene's logic: t ↦ T, f ↦ F, u ↦ U.  By Theorem 5.3
    the image is closed under the connectives, and the connectives
    restrict to Kleene's tables on it. *)
val of_kleene : Kleene.t -> t

(** Partial inverse of {!of_kleene}. *)
val to_kleene_opt : t -> Kleene.t option
