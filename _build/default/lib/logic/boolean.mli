(** The two-valued Boolean logic L2v. *)

type t =
  | T
  | F

include Truth.S with type t := t

val of_bool : bool -> t
val to_bool : t -> bool
