(** Concrete syntax for first-order formulae.

    Grammar (keywords case-sensitive, whitespace free-form):

    {v
    formula ::= 'exists' var+ '.' formula
              | 'forall' var+ '.' formula
              | disj
    disj    ::= conj ('|' conj)*
    conj    ::= unary ('&' unary)*
    unary   ::= '~' unary            negation
              | '!' unary            the assertion operator ↑
              | '(' formula ')'
              | atom
    atom    ::= ident '(' term (',' term)* ')'      relational atom
              | term '=' term | term '!=' term
              | term '<' term | term '<=' term
              | 'const' '(' term ')' | 'null' '(' term ')'
              | 'true' | 'false'
    term    ::= ident                a variable
              | integer              an Int constant
              | '...' (single quotes) a Str constant
    v}

    Example: [exists y. R(x, y) & ~(y = 'paris')]. *)

exception Parse_error of string

(** [parse input] — @raise Parse_error on syntax errors. *)
val parse : string -> Fo.t
