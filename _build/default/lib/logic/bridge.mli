(** Translations between relational algebra and first-order logic.

    Relational calculus "has exactly the power of first-order logic"
    (Section 2); this module realises both directions of that
    equivalence under the active-domain semantics used throughout:

    - {!fo_of_algebra} turns an algebra query of arity k into an FO
      formula with free variables [$c0 … $c(k-1)] such that the answers
      under the two-valued Boolean semantics coincide with evaluation;
    - {!algebra_of_fo} turns any FO formula into an algebra query via
      the classical active-domain encoding: negation becomes complement
      w.r.t. [Dom], quantifiers become projections, and universal
      quantification goes through double negation.

    Both are used to cross-check the algebra evaluator against the FO
    evaluator and to feed SQL/FO-level pipelines into the approximation
    schemes. *)

exception Unsupported of string

(** [fo_of_algebra schema q] — the free variables, in order of
    {!Fo.free_vars}, are [$c0 … $c(k-1)] where k is the arity of [q].
    @raise Unsupported on [Anti_unify_join] and on literal relations
    containing nulls (FO terms denote constants).
    @raise Algebra.Type_error on ill-typed input. *)
val fo_of_algebra : Schema.t -> Algebra.t -> Fo.t

(** [algebra_of_fo schema phi] — the output arity is the number of free
    variables of [phi], columns ordered as {!Fo.free_vars}.  The
    assertion operator is the identity under the two-valued target
    semantics.  Quantified variables are renamed apart first, so
    shadowing is fine. *)
val algebra_of_fo : Schema.t -> Fo.t -> Algebra.t
