(** Capture of many-valued FO by Boolean FO (Theorems 5.4 and 5.5).

    For every formula φ of FO(L3v) — or FO↑SQL, i.e. with the assertion
    operator — under any mixed semantics, and for every truth value τ,
    there is a Boolean FO formula ψτ such that ⟦φ⟧_{D,ā} = τ iff
    D ⊨ ψτ(ā).  This module constructs ψτ by structural recursion
    ("the translation is effective", which is the content of the
    theorems); the test suite verifies the equivalence exhaustively on
    random databases. *)

(** [truth_formula mixed φ τ] is ψτ: a Boolean FO formula (to be
    evaluated with {!Semantics.eval_bool}) characterising the
    assignments on which φ evaluates to τ under the mixed semantics.
    Fresh bound variables are drawn from the reserved namespace
    ["$cap<n>"]. *)
val truth_formula : Semantics.mixed -> Fo.t -> Kleene.t -> Fo.t

(** [is_true mixed φ] = [truth_formula mixed φ T], the Boolean query
    equivalent to SQL's "keep the tuples where φ is t" (Theorem 5.5). *)
val is_true : Semantics.mixed -> Fo.t -> Fo.t
