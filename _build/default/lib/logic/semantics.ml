type tag =
  | Bool
  | Unif
  | Nullfree

type mixed = {
  rel_sem : string -> tag;
  eq_sem : tag;
}

let all_bool = { rel_sem = (fun _ -> Bool); eq_sem = Bool }
let all_unif = { rel_sem = (fun _ -> Unif); eq_sem = Unif }
let all_nullfree = { rel_sem = (fun _ -> Nullfree); eq_sem = Nullfree }
let sql = { rel_sem = (fun _ -> Bool); eq_sem = Nullfree }

type env = (string * Value.t) list

exception Eval_error of string

let eval_error fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

let term_value env = function
  | Fo.Cst c -> Value.Const c
  | Fo.Var x ->
    (match List.assoc_opt x env with
     | Some v -> v
     | None -> eval_error "unbound variable %s" x)

let rel_atom tag db name tuple =
  let r =
    try Database.relation db name
    with Not_found -> eval_error "unknown relation %s" name
  in
  if Relation.arity r <> Tuple.arity tuple then
    eval_error "atom %s of arity %d applied to %d terms" name
      (Relation.arity r) (Tuple.arity tuple);
  match tag with
  | Bool -> Kleene.of_bool (Relation.mem tuple r)
  | Unif ->
    if Relation.mem tuple r then Kleene.T
    else if Relation.exists (Tuple.unifiable tuple) r then Kleene.U
    else Kleene.F
  | Nullfree ->
    if not (Tuple.is_complete tuple) then Kleene.U
    else Kleene.of_bool (Relation.mem tuple r)

let lt_atom tag v1 v2 =
  match tag with
  | Bool -> Kleene.of_bool (Value.compare v1 v2 < 0)
  | Unif ->
    (* a value is never strictly below itself, even an unknown one *)
    if Value.equal v1 v2 then Kleene.F
    else if Value.is_const v1 && Value.is_const v2 then
      Kleene.of_bool (Value.compare v1 v2 < 0)
    else Kleene.U
  | Nullfree ->
    if Value.is_null v1 || Value.is_null v2 then Kleene.U
    else Kleene.of_bool (Value.compare v1 v2 < 0)

let eq_atom tag v1 v2 =
  match tag with
  | Bool -> Kleene.of_bool (Value.equal v1 v2)
  | Unif ->
    if Value.equal v1 v2 then Kleene.T
    else if Value.is_const v1 && Value.is_const v2 then Kleene.F
    else Kleene.U
  | Nullfree ->
    if Value.is_null v1 || Value.is_null v2 then Kleene.U
    else Kleene.of_bool (Value.equal v1 v2)

let eval mixed db env phi =
  let domain = Database.active_domain db in
  let rec go env = function
    | Fo.Atom (name, terms) ->
      let tuple = Array.of_list (List.map (term_value env) terms) in
      rel_atom (mixed.rel_sem name) db name tuple
    | Fo.Eq (t1, t2) ->
      eq_atom mixed.eq_sem (term_value env t1) (term_value env t2)
    | Fo.Lt (t1, t2) ->
      lt_atom mixed.eq_sem (term_value env t1) (term_value env t2)
    | Fo.Is_const t -> Kleene.of_bool (Value.is_const (term_value env t))
    | Fo.Is_null t -> Kleene.of_bool (Value.is_null (term_value env t))
    | Fo.Tru -> Kleene.T
    | Fo.Fls -> Kleene.F
    | Fo.Not f -> Kleene.neg (go env f)
    | Fo.And (f, g) ->
      (match go env f with
       | Kleene.F -> Kleene.F
       | v -> Kleene.conj v (go env g))
    | Fo.Or (f, g) ->
      (match go env f with
       | Kleene.T -> Kleene.T
       | v -> Kleene.disj v (go env g))
    | Fo.Exists (x, f) ->
      let rec scan acc = function
        | [] -> acc
        | d :: rest ->
          (match go ((x, d) :: env) f with
           | Kleene.T -> Kleene.T
           | v ->
             let acc = Kleene.disj acc v in
             scan acc rest)
      in
      scan Kleene.F domain
    | Fo.Forall (x, f) ->
      let rec scan acc = function
        | [] -> acc
        | d :: rest ->
          (match go ((x, d) :: env) f with
           | Kleene.F -> Kleene.F
           | v ->
             let acc = Kleene.conj acc v in
             scan acc rest)
      in
      scan Kleene.T domain
    | Fo.Assert f -> Assertion.assert_ (go env f)
  in
  go env phi

let eval_bool db env phi =
  match eval all_bool db env phi with
  | Kleene.T -> true
  | Kleene.F -> false
  | Kleene.U ->
    raise (Eval_error "eval_bool: unexpected u under the Boolean semantics")

let answers mixed db phi =
  let vars = Fo.free_vars phi in
  let domain = Database.active_domain db in
  let rec assignments = function
    | [] -> [ [] ]
    | x :: rest ->
      let tails = assignments rest in
      List.concat_map (fun d -> List.map (fun tl -> (x, d) :: tl) tails) domain
  in
  List.map
    (fun env ->
      let tuple = Array.of_list (List.map (fun x -> List.assoc x env) vars) in
      (tuple, eval mixed db env phi))
    (assignments vars)

let certain_true mixed db phi =
  let k = List.length (Fo.free_vars phi) in
  List.fold_left
    (fun r (tuple, v) ->
      match v with
      | Kleene.T -> Relation.add tuple r
      | Kleene.F | Kleene.U -> r)
    (Relation.empty k) (answers mixed db phi)
