type t =
  | T
  | F
  | S
  | ST
  | SF
  | U

type world_class =
  | All_true
  | Mixed
  | All_false

let values = [ T; F; S; ST; SF; U ]

let equal a b = a = b

let top = T
let bot = F

let classes = function
  | T -> [ All_true ]
  | F -> [ All_false ]
  | S -> [ Mixed ]
  | ST -> [ All_true; Mixed ]
  | SF -> [ All_false; Mixed ]
  | U -> [ All_true; Mixed; All_false ]

let class_mem c cs = List.mem c cs

let subset cs1 cs2 = List.for_all (fun c -> class_mem c cs2) cs1

let of_classes cs =
  if cs = [] then invalid_arg "Sixv.of_classes: empty class set";
  (* most specific value whose class set covers [cs]; values are listed
     from most to least specific, so the first hit is the answer *)
  let ordered = [ T; F; S; ST; SF; U ] in
  match List.find_opt (fun v -> subset cs (classes v)) ordered with
  | Some v -> v
  | None -> U

(* class-level semantics of the connectives over a shared world set *)

let neg_class = function
  | All_true -> All_false
  | Mixed -> Mixed
  | All_false -> All_true

let conj_classes c1 c2 =
  match c1, c2 with
  | All_false, _ | _, All_false -> [ All_false ]
  | All_true, All_true -> [ All_true ]
  | All_true, Mixed | Mixed, All_true -> [ Mixed ]
  | Mixed, Mixed -> [ Mixed; All_false ]

let disj_classes c1 c2 =
  List.map neg_class (conj_classes (neg_class c1) (neg_class c2))

let dedup cs = List.sort_uniq compare cs

let lift2 class_op a b =
  let outcomes =
    List.concat_map
      (fun c1 -> List.concat_map (fun c2 -> class_op c1 c2) (classes b))
      (classes a)
  in
  of_classes (dedup outcomes)

let neg a = of_classes (dedup (List.map neg_class (classes a)))

let conj = lift2 conj_classes
let disj = lift2 disj_classes

(* knowledge order: more possible classes = less information *)
let knowledge_le a b = subset (classes b) (classes a)

let least = Some U

let pp ppf v =
  Format.pp_print_string ppf
    (match v with
     | T -> "t"
     | F -> "f"
     | S -> "s"
     | ST -> "st"
     | SF -> "sf"
     | U -> "u")

let to_string v = Format.asprintf "%a" pp v

let of_kleene = function
  | Kleene.T -> T
  | Kleene.F -> F
  | Kleene.U -> U

let to_kleene_opt = function
  | T -> Some Kleene.T
  | F -> Some Kleene.F
  | U -> Some Kleene.U
  | S | ST | SF -> None
