type term =
  | Var of string
  | Cst of Value.const

type t =
  | Atom of string * term list
  | Eq of term * term
  | Lt of term * term
  | Is_const of term
  | Is_null of term
  | Tru
  | Fls
  | Not of t
  | And of t * t
  | Or of t * t
  | Exists of string * t
  | Forall of string * t
  | Assert of t

let conj = function
  | [] -> Tru
  | f :: fs -> List.fold_left (fun acc g -> And (acc, g)) f fs

let disj = function
  | [] -> Fls
  | f :: fs -> List.fold_left (fun acc g -> Or (acc, g)) f fs

let exists_many vars body =
  List.fold_right (fun x acc -> Exists (x, acc)) vars body

let forall_many vars body =
  List.fold_right (fun x acc -> Forall (x, acc)) vars body

let free_vars phi =
  let add x (seen, acc) =
    if List.mem x seen then (seen, acc) else (x :: seen, x :: acc)
  in
  let add_term bound t st =
    match t with
    | Var x -> if List.mem x bound then st else add x st
    | Cst _ -> st
  in
  let rec go bound st = function
    | Atom (_, terms) -> List.fold_left (fun st t -> add_term bound t st) st terms
    | Eq (t1, t2) | Lt (t1, t2) -> add_term bound t2 (add_term bound t1 st)
    | Is_const t | Is_null t -> add_term bound t st
    | Tru | Fls -> st
    | Not f | Assert f -> go bound st f
    | And (f, g) | Or (f, g) -> go bound (go bound st f) g
    | Exists (x, f) | Forall (x, f) -> go (x :: bound) st f
  in
  let _, acc = go [] ([], []) phi in
  List.rev acc

let rename_free subst phi =
  let rename_var bound x =
    if List.mem x bound then x
    else match List.assoc_opt x subst with Some y -> y | None -> x
  in
  let rename_term bound = function
    | Var x -> Var (rename_var bound x)
    | Cst _ as t -> t
  in
  let rec go bound = function
    | Atom (r, terms) -> Atom (r, List.map (rename_term bound) terms)
    | Eq (t1, t2) -> Eq (rename_term bound t1, rename_term bound t2)
    | Lt (t1, t2) -> Lt (rename_term bound t1, rename_term bound t2)
    | Is_const t -> Is_const (rename_term bound t)
    | Is_null t -> Is_null (rename_term bound t)
    | Tru -> Tru
    | Fls -> Fls
    | Not f -> Not (go bound f)
    | And (f, g) -> And (go bound f, go bound g)
    | Or (f, g) -> Or (go bound f, go bound g)
    | Exists (x, f) -> Exists (x, go (x :: bound) f)
    | Forall (x, f) -> Forall (x, go (x :: bound) f)
    | Assert f -> Assert (go bound f)
  in
  go [] phi

let alpha_counter = ref 0

let alpha_unique phi =
  let fresh () =
    incr alpha_counter;
    Printf.sprintf "$q%d" !alpha_counter
  in
  (* [env] maps bound variable names to their fresh replacements *)
  let rename_term env = function
    | Var x -> (match List.assoc_opt x env with Some y -> Var y | None -> Var x)
    | Cst _ as t -> t
  in
  let rec go env = function
    | Atom (r, terms) -> Atom (r, List.map (rename_term env) terms)
    | Eq (t1, t2) -> Eq (rename_term env t1, rename_term env t2)
    | Lt (t1, t2) -> Lt (rename_term env t1, rename_term env t2)
    | Is_const t -> Is_const (rename_term env t)
    | Is_null t -> Is_null (rename_term env t)
    | Tru -> Tru
    | Fls -> Fls
    | Not f -> Not (go env f)
    | And (f, g) -> And (go env f, go env g)
    | Or (f, g) -> Or (go env f, go env g)
    | Exists (x, f) ->
      let y = fresh () in
      Exists (y, go ((x, y) :: env) f)
    | Forall (x, f) ->
      let y = fresh () in
      Forall (y, go ((x, y) :: env) f)
    | Assert f -> Assert (go env f)
  in
  go [] phi

let rec uses_assert = function
  | Atom _ | Eq _ | Lt _ | Is_const _ | Is_null _ | Tru | Fls -> false
  | Not f | Exists (_, f) | Forall (_, f) -> uses_assert f
  | And (f, g) | Or (f, g) -> uses_assert f || uses_assert g
  | Assert _ -> true

let rec is_positive_existential = function
  | Atom _ | Eq _ | Tru | Fls -> true
  | Lt _ -> false
  | Is_const _ | Is_null _ | Not _ | Forall _ | Assert _ -> false
  | And (f, g) | Or (f, g) ->
    is_positive_existential f && is_positive_existential g
  | Exists (_, f) -> is_positive_existential f

let rec is_positive = function
  | Atom _ | Eq _ | Tru | Fls -> true
  | Lt _ -> false
  | Is_const _ | Is_null _ | Not _ | Assert _ -> false
  | And (f, g) | Or (f, g) -> is_positive f && is_positive g
  | Exists (_, f) | Forall (_, f) -> is_positive f

let rec is_pos_forall_guarded phi =
  match phi with
  | Atom _ | Eq _ | Tru | Fls -> true
  | Lt _ -> false
  | Is_const _ | Is_null _ | Not _ | Assert _ -> false
  | And (f, g) | Or (f, g) ->
    is_pos_forall_guarded f && is_pos_forall_guarded g
  | Exists (_, f) -> is_pos_forall_guarded f
  | Forall _ ->
    (* either a plain positive ∀, or the guarded rule
       ∀x̄ (α(x̄) → φ) written as ∀x̄ (¬α(x̄) ∨ φ) *)
    let rec chain acc = function
      | Forall (x, f) -> chain (x :: acc) f
      | body -> (List.rev acc, body)
    in
    let xs, body = chain [] phi in
    (match body with
     | Or (Not (Atom (_, args)), f) | Or (f, Not (Atom (_, args))) ->
       let arg_vars =
         List.filter_map (function Var v -> Some v | Cst _ -> None) args
       in
       let distinct = List.sort_uniq String.compare arg_vars in
       List.length args = List.length arg_vars
       && List.length distinct = List.length arg_vars
       && List.for_all (fun x -> List.mem x arg_vars) xs
       && List.for_all (fun v -> List.mem v xs) arg_vars
       && is_pos_forall_guarded f
     | _ -> is_pos_forall_guarded body)

let relations phi =
  let rec go acc = function
    | Atom (r, _) -> if List.mem r acc then acc else r :: acc
    | Eq _ | Lt _ | Is_const _ | Is_null _ | Tru | Fls -> acc
    | Not f | Exists (_, f) | Forall (_, f) | Assert f -> go acc f
    | And (f, g) | Or (f, g) -> go (go acc f) g
  in
  List.rev (go [] phi)

let consts phi =
  let add c acc =
    if List.exists (Value.equal_const c) acc then acc else c :: acc
  in
  let add_term t acc = match t with Cst c -> add c acc | Var _ -> acc in
  let rec go acc = function
    | Atom (_, terms) -> List.fold_left (fun acc t -> add_term t acc) acc terms
    | Eq (t1, t2) | Lt (t1, t2) -> add_term t2 (add_term t1 acc)
    | Is_const t | Is_null t -> add_term t acc
    | Tru | Fls -> acc
    | Not f | Exists (_, f) | Forall (_, f) | Assert f -> go acc f
    | And (f, g) | Or (f, g) -> go (go acc f) g
  in
  List.rev (go [] phi)

let rec size = function
  | Atom _ | Eq _ | Lt _ | Is_const _ | Is_null _ | Tru | Fls -> 1
  | Not f | Exists (_, f) | Forall (_, f) | Assert f -> 1 + size f
  | And (f, g) | Or (f, g) -> 1 + size f + size g

let pp_term ppf = function
  | Var x -> Format.pp_print_string ppf x
  | Cst c -> Value.pp_const ppf c

let rec pp ppf = function
  | Atom (r, terms) ->
    Format.fprintf ppf "%s(%a)" r
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
         pp_term)
      terms
  | Eq (t1, t2) -> Format.fprintf ppf "%a = %a" pp_term t1 pp_term t2
  | Lt (t1, t2) -> Format.fprintf ppf "%a < %a" pp_term t1 pp_term t2
  | Is_const t -> Format.fprintf ppf "const(%a)" pp_term t
  | Is_null t -> Format.fprintf ppf "null(%a)" pp_term t
  | Tru -> Format.pp_print_string ppf "⊤"
  | Fls -> Format.pp_print_string ppf "⊥"
  | Not f -> Format.fprintf ppf "¬%a" pp_paren f
  | And (f, g) -> Format.fprintf ppf "(%a ∧ %a)" pp f pp g
  | Or (f, g) -> Format.fprintf ppf "(%a ∨ %a)" pp f pp g
  | Exists (x, f) -> Format.fprintf ppf "∃%s.%a" x pp_paren f
  | Forall (x, f) -> Format.fprintf ppf "∀%s.%a" x pp_paren f
  | Assert f -> Format.fprintf ppf "↑%a" pp_paren f

and pp_paren ppf f =
  match f with
  | Atom _ | Eq _ | Lt _ | Is_const _ | Is_null _ | Tru | Fls -> pp ppf f
  | Not _ | And _ | Or _ | Exists _ | Forall _ | Assert _ ->
    Format.fprintf ppf "(%a)" pp f

let to_string f = Format.asprintf "%a" pp f
