(** First-order formulae over a relational vocabulary (Section 2), with
    the assertion operator ↑ of Section 5.2 so that the same syntax can
    express FO, FO(L3v) and FO↑SQL.

    Atomic formulae are relational atoms R(x̄), equalities, and the
    constant/null tests const(x), null(x).  Quantifiers range over the
    active domain of the database under evaluation. *)

type term =
  | Var of string
  | Cst of Value.const

type t =
  | Atom of string * term list  (** R(t̄) *)
  | Eq of term * term
  | Lt of term * term
      (** typed order comparison — Section 6's "types of attributes":
          follows the total order of {!Value.compare} on constants;
          atoms touching nulls evaluate to u under the Unif/Nullfree
          semantics and to the literal value order under Bool *)
  | Is_const of term
  | Is_null of term
  | Tru  (** ⊤ *)
  | Fls  (** ⊥ *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Exists of string * t
  | Forall of string * t
  | Assert of t  (** ↑φ — collapses u to f (Section 5.2) *)

(** n-ary smart constructors (right-nested; empty list gives the unit). *)

val conj : t list -> t
val disj : t list -> t
val exists_many : string list -> t -> t
val forall_many : string list -> t -> t

(** [free_vars φ] in order of first occurrence. *)
val free_vars : t -> string list

(** [rename_free subst φ] replaces free occurrences of variables
    according to [subst]; bound variables are untouched, and no
    capture-avoidance is attempted — callers must substitute with
    globally fresh names (which is how {!Bridge} uses it). *)
val rename_free : (string * string) list -> t -> t

(** [alpha_unique φ] renames bound variables so that every quantifier
    binds a distinct, globally fresh name (drawn from the reserved
    namespace ["$q<n>"]) that also differs from every free variable. *)
val alpha_unique : t -> t

(** [uses_assert φ] holds iff ↑ occurs in φ. *)
val uses_assert : t -> bool

(** [is_positive_existential φ] holds iff φ is built from atoms (no
    const/null tests) with ∧, ∨, ∃ only — i.e. φ is a UCQ. *)
val is_positive_existential : t -> bool

(** [is_positive φ] — the ∃,∀,∧,∨ fragment (no negation, tests or ↑):
    the class preserved under onto homomorphisms on arbitrary
    structures (Section 4.1). *)
val is_positive : t -> bool

(** [is_pos_forall_guarded φ] — the class Pos∀G of [18]: positive
    formulae further closed under the guarded-universal rule
    ∀x̄ (α(x̄) → φ), recognised here as a ∀-chain over
    [Or (Not (Atom α), φ)] whose guard α applies distinct variables
    from the chain.  Pos∀G formulae are preserved under strong onto
    homomorphisms, so naive evaluation computes their certain answers
    under CWA (Theorem 4.4). *)
val is_pos_forall_guarded : t -> bool

(** [relations φ] lists the distinct relation names in φ. *)
val relations : t -> string list

(** [consts φ] lists the distinct constants mentioned in φ. *)
val consts : t -> Value.const list

(** [size φ] is the number of nodes. *)
val size : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
