type 'a logic = {
  values : 'a list;
  equal : 'a -> 'a -> bool;
  top : 'a;
  bot : 'a;
  neg : 'a -> 'a;
  conj : 'a -> 'a -> 'a;
  disj : 'a -> 'a -> 'a;
}

let of_module (type a) (module L : Truth.S with type t = a) : a logic =
  {
    values = L.values;
    equal = L.equal;
    top = L.top;
    bot = L.bot;
    neg = L.neg;
    conj = L.conj;
    disj = L.disj;
  }

let for_all1 l p = List.for_all p l.values

let for_all2 l p =
  List.for_all (fun a -> List.for_all (fun b -> p a b) l.values) l.values

let for_all3 l p =
  List.for_all
    (fun a ->
      List.for_all
        (fun b -> List.for_all (fun c -> p a b c) l.values)
        l.values)
    l.values

let idempotent l =
  for_all1 l (fun a -> l.equal (l.conj a a) a && l.equal (l.disj a a) a)

let distributive l =
  for_all3 l (fun a b c ->
      l.equal (l.conj a (l.disj b c)) (l.disj (l.conj a b) (l.conj a c))
      && l.equal (l.disj a (l.conj b c)) (l.conj (l.disj a b) (l.disj a c)))

let commutative l =
  for_all2 l (fun a b ->
      l.equal (l.conj a b) (l.conj b a) && l.equal (l.disj a b) (l.disj b a))

let associative l =
  for_all3 l (fun a b c ->
      l.equal (l.conj a (l.conj b c)) (l.conj (l.conj a b) c)
      && l.equal (l.disj a (l.disj b c)) (l.disj (l.disj a b) c))

let de_morgan l =
  for_all1 l (fun a -> l.equal (l.neg (l.neg a)) a)
  && for_all2 l (fun a b ->
         l.equal (l.neg (l.conj a b)) (l.disj (l.neg a) (l.neg b))
         && l.equal (l.neg (l.disj a b)) (l.conj (l.neg a) (l.neg b)))

let weakly_idempotent l =
  for_all1 l (fun a ->
      l.equal (l.disj a (l.disj a a)) (l.disj a a)
      && l.equal (l.conj a (l.conj a a)) (l.conj a a))

let monotone ~le l =
  let mono1 f = for_all2 l (fun a a' -> (not (le a a')) || le (f a) (f a')) in
  let mono2 f =
    for_all2 l (fun a a' ->
        (not (le a a'))
        || for_all2 l (fun b b' ->
               (not (le b b')) || le (f a b) (f a' b')))
  in
  mono1 l.neg && mono2 l.conj && mono2 l.disj

let mem l x carrier = List.exists (l.equal x) carrier

let closed l carrier =
  List.for_all
    (fun a ->
      mem l (l.neg a) carrier
      && List.for_all
           (fun b -> mem l (l.conj a b) carrier && mem l (l.disj a b) carrier)
           carrier)
    carrier

(* all subsets of [l.values] that contain top and bot, as lists *)
let subsets_with_top_bot l =
  let rest =
    List.filter
      (fun v -> not (l.equal v l.top || l.equal v l.bot))
      l.values
  in
  let base = [ l.top; l.bot ] in
  List.fold_left
    (fun acc v -> acc @ List.map (fun s -> v :: s) acc)
    [ base ] rest

let sublogics l =
  List.filter (closed l) (subsets_with_top_bot l)

let restrict l carrier = { l with values = carrier }

let maximal_sublogics ~satisfying l =
  let good =
    List.filter (fun c -> satisfying (restrict l c)) (sublogics l)
  in
  let strictly_contains big small =
    List.length big > List.length small
    && List.for_all (fun x -> mem l x big) small
  in
  List.filter
    (fun c -> not (List.exists (fun c' -> strictly_contains c' c) good))
    good
