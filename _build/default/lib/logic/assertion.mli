(** The assertion operator ↑ (Bochvar) and the logic L3v↑ (Section 5.2).

    SQL keeps only the tuples whose WHERE-condition evaluates to t and
    then returns to two-valued logic: this is modelled by the unary
    connective ↑ which maps t to t and both f and u to f.  ↑ is the one
    connective of SQL's logic that does {e not} respect the knowledge
    order (u ⪯ t but ↑u = f ⋠ t = ↑t), and it is the culprit behind SQL
    returning almost-certainly-false answers (end of Section 5.1). *)

(** ↑ on Kleene's logic. *)
val assert_ : Kleene.t -> Kleene.t

(** ↑ on L6v: t goes to t, every other value to f (knowledge of truth is
    asserted, everything else collapsed). *)
val assert6 : Sixv.t -> Sixv.t

(** [respects_knowledge_order] reports whether ↑ is monotone with
    respect to the Kleene knowledge order — it is not, and this witness
    function returns the offending pair [(u, t)]. *)
val knowledge_violation : (Kleene.t * Kleene.t) option
