exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

let col i = Printf.sprintf "$c%d" i

let fresh_counter = ref 0

let fresh () =
  incr fresh_counter;
  Printf.sprintf "$b%d" !fresh_counter

(* ------------------------------------------------------------------ *)
(* algebra → FO                                                        *)
(* ------------------------------------------------------------------ *)

(* anchor the free variables $c0 … $c(k-1) in order: prefix the formula
   with trivially true equalities so that Fo.free_vars lists them in
   column order even if the body mentions them in another order *)
let anchor k body =
  let anchors =
    List.init k (fun i -> Fo.Eq (Fo.Var (col i), Fo.Var (col i)))
  in
  Fo.conj (anchors @ [ body ])

let condition_formula ~var cond =
  let term = function
    | Condition.Col i -> Fo.Var (var i)
    | Condition.Lit c -> Fo.Cst c
  in
  let rec go = function
    | Condition.True -> Fo.Tru
    | Condition.False -> Fo.Fls
    | Condition.Is_const i -> Fo.Is_const (term (Condition.Col i))
    | Condition.Is_null i -> Fo.Is_null (term (Condition.Col i))
    | Condition.Eq (x, y) -> Fo.Eq (term x, term y)
    | Condition.Neq (x, y) -> Fo.Not (Fo.Eq (term x, term y))
    | Condition.Lt (x, y) -> Fo.Lt (term x, term y)
    | Condition.Le (x, y) -> Fo.Not (Fo.Lt (term y, term x))
    | Condition.And (a, b) -> Fo.And (go a, go b)
    | Condition.Or (a, b) -> Fo.Or (go a, go b)
  in
  go cond

let fo_of_algebra schema q =
  ignore (Algebra.arity schema q);
  (* [tr q vars] is a formula whose i-th output column is the variable
     [vars i] *)
  let rec tr q (vars : int -> string) =
    match q with
    | Algebra.Rel name ->
      let k = Schema.arity schema name in
      Fo.Atom (name, List.init k (fun i -> Fo.Var (vars i)))
    | Algebra.Lit (k, tuples) ->
      let tuple_formula t =
        Fo.conj
          (List.init k (fun i ->
               match t.(i) with
               | Value.Const c -> Fo.Eq (Fo.Var (vars i), Fo.Cst c)
               | Value.Null _ ->
                 unsupported "fo_of_algebra: literal relation contains nulls"))
      in
      Fo.disj (List.map tuple_formula tuples)
    | Algebra.Select (cond, q1) ->
      Fo.And (tr q1 vars, condition_formula ~var:vars cond)
    | Algebra.Project (idxs, q1) ->
      let m = Algebra.arity schema q1 in
      let ys = Array.init m (fun _ -> fresh ()) in
      let body = tr q1 (fun i -> ys.(i)) in
      let eqs =
        List.mapi
          (fun j idx -> Fo.Eq (Fo.Var (vars j), Fo.Var ys.(idx)))
          idxs
      in
      Fo.exists_many (Array.to_list ys) (Fo.conj (body :: eqs))
    | Algebra.Product (q1, q2) ->
      let k1 = Algebra.arity schema q1 in
      Fo.And (tr q1 vars, tr q2 (fun i -> vars (k1 + i)))
    | Algebra.Union (q1, q2) -> Fo.Or (tr q1 vars, tr q2 vars)
    | Algebra.Inter (q1, q2) -> Fo.And (tr q1 vars, tr q2 vars)
    | Algebra.Diff (q1, q2) -> Fo.And (tr q1 vars, Fo.Not (tr q2 vars))
    | Algebra.Division (q1, q2) ->
      let m = Algebra.arity schema q2 in
      let ys = Array.init m (fun _ -> fresh ()) in
      let head = tr q1 (fun i ->
          if i < Algebra.arity schema q1 - m then vars i
          else ys.(i - (Algebra.arity schema q1 - m)))
      in
      let divisor = tr q2 (fun i -> ys.(i)) in
      (* we must also require the head tuple to be a candidate: ā is in
         the division iff ∃b̄ q1(ā b̄) ... no: the textbook definition
         requires ā ∈ π_head(q1) and ∀b̄ (q2(b̄) → q1(ā b̄)) *)
      let zs = Array.init m (fun _ -> fresh ()) in
      let candidate =
        Fo.exists_many (Array.to_list zs)
          (tr q1 (fun i ->
               if i < Algebra.arity schema q1 - m then vars i
               else zs.(i - (Algebra.arity schema q1 - m))))
      in
      Fo.And
        ( candidate,
          Fo.forall_many (Array.to_list ys)
            (Fo.Or (Fo.Not divisor, head)) )
    | Algebra.Dom k ->
      (* every adom tuple qualifies: anchored truth *)
      Fo.conj (List.init k (fun i -> Fo.Eq (Fo.Var (vars i), Fo.Var (vars i))))
    | Algebra.Anti_unify_join _ ->
      unsupported "fo_of_algebra: the unification anti-semijoin is not FO \
                   over constants-only terms"
  in
  let k = Algebra.arity schema q in
  anchor k (tr q col)

(* ------------------------------------------------------------------ *)
(* FO → algebra (active-domain encoding)                               *)
(* ------------------------------------------------------------------ *)

let algebra_of_fo schema phi =
  let phi = Fo.alpha_unique phi in
  (* [enc phi vars] is an algebra query of arity |vars| whose column i
     holds the value of the variable [List.nth vars i]; [vars] must
     contain every free variable of [phi]. *)
  let index vars x =
    let rec go i = function
      | [] -> unsupported "algebra_of_fo: unbound variable %s" x
      | y :: rest -> if String.equal x y then i else go (i + 1) rest
    in
    go 0 vars
  in
  let full vars = Algebra.Dom (List.length vars) in
  let operand vars = function
    | Fo.Var x -> Condition.Col (index vars x)
    | Fo.Cst c -> Condition.Lit c
  in
  let rec enc phi vars =
    match phi with
    | Fo.Atom (name, terms) ->
      let m = List.length terms in
      if m <> Schema.arity schema name then
        raise
          (Algebra.Type_error
             (Printf.sprintf "atom %s used with arity %d" name m));
      (* columns 0..m-1 hold the atom positions; extra columns provide
         the variables of [vars] not mentioned in the atom *)
      let term_var = function Fo.Var x -> Some x | Fo.Cst _ -> None in
      let atom_vars = List.filter_map term_var terms in
      let extra_vars = List.filter (fun v -> not (List.mem v atom_vars)) vars in
      let base =
        if extra_vars = [] then Algebra.Rel name
        else Algebra.Product (Algebra.Rel name, Algebra.Dom (List.length extra_vars))
      in
      (* constants and repeated variables become selection conditions *)
      let conds = ref [] in
      List.iteri
        (fun i t ->
          match t with
          | Fo.Cst c -> conds := Condition.eq_const i c :: !conds
          | Fo.Var x ->
            (* equate with the first position of the same variable *)
            let rec first j = function
              | [] -> i
              | t' :: rest ->
                if j >= i then i
                else (match t' with
                      | Fo.Var y when String.equal x y -> j
                      | _ -> first (j + 1) rest)
            in
            let j = first 0 terms in
            if j < i then conds := Condition.eq_col j i :: !conds)
        terms;
      let selected =
        match !conds with
        | [] -> base
        | c :: cs ->
          Algebra.Select
            (List.fold_left (fun a b -> Condition.And (a, b)) c cs, base)
      in
      (* project to [vars] order *)
      let position v =
        match
          (* first occurrence of v among the atom's terms *)
          List.find_index
            (fun t -> match t with Fo.Var x -> String.equal x v | _ -> false)
            terms
        with
        | Some i -> i
        | None ->
          (* one of the extra columns *)
          let rec go i = function
            | [] -> assert false
            | x :: rest -> if String.equal x v then i else go (i + 1) rest
          in
          m + go 0 extra_vars
      in
      Algebra.Project (List.map position vars, selected)
    | Fo.Eq (t1, t2) ->
      Algebra.Select
        (Condition.Eq (operand vars t1, operand vars t2), full vars)
    | Fo.Lt (t1, t2) ->
      Algebra.Select
        (Condition.Lt (operand vars t1, operand vars t2), full vars)
    | Fo.Is_const t ->
      (match operand vars t with
       | Condition.Col i -> Algebra.Select (Condition.Is_const i, full vars)
       | Condition.Lit _ -> full vars)
    | Fo.Is_null t ->
      (match operand vars t with
       | Condition.Col i -> Algebra.Select (Condition.Is_null i, full vars)
       | Condition.Lit _ -> Algebra.Lit (List.length vars, []))
    | Fo.Tru -> full vars
    | Fo.Fls -> Algebra.Lit (List.length vars, [])
    | Fo.Not f -> Algebra.Diff (full vars, enc f vars)
    | Fo.And (f, g) -> Algebra.Inter (enc f vars, enc g vars)
    | Fo.Or (f, g) -> Algebra.Union (enc f vars, enc g vars)
    | Fo.Exists (x, f) ->
      (* bound variables are renamed apart, so x ∉ vars *)
      let inner = enc f (vars @ [ x ]) in
      Algebra.Project (List.init (List.length vars) (fun i -> i), inner)
    | Fo.Forall (x, f) -> enc (Fo.Not (Fo.Exists (x, Fo.Not f))) vars
    | Fo.Assert f ->
      (* two-valued target: ↑ is the identity *)
      enc f vars
  in
  enc phi (Fo.free_vars phi)
