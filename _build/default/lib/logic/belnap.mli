(** Belnap's four-valued logic L4v (the paper's reference point [10] for
    knowledge orders; cf. the bilattice literature [7, 8] it cites).

    Truth values: [T] (told true), [F] (told false), [N] (told nothing —
    Kleene's u) and [B] (told both — conflicting information, which
    arises in inconsistency-tolerant settings the survey touches on when
    discussing knowledge orders).  The values form a {e bilattice}: the
    truth order f ≤t n,b ≤t t with ∧/∨ as meet/join, and the knowledge
    order n ≤k t,f ≤k b, whose meet {!kmeet} and join {!kjoin} we also
    expose.  Kleene's L3v is the sublogic without [B]. *)

type t =
  | T
  | F
  | N  (** neither / unknown *)
  | B  (** both / conflict *)

include Truth.S with type t := t

(** Knowledge-order meet (consensus) and join (gullibility). *)

val kmeet : t -> t -> t
val kjoin : t -> t -> t

(** Embedding of Kleene's logic (u ↦ N); its image is closed under all
    connectives. *)
val of_kleene : Kleene.t -> t

val to_kleene_opt : t -> Kleene.t option
