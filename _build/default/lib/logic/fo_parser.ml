exception Parse_error of string

let parse_error fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

type token =
  | TIdent of string
  | TInt of int
  | TStr of string
  | TLparen
  | TRparen
  | TComma
  | TDot
  | TEq
  | TNeq
  | TLt
  | TLe
  | TAnd
  | TOr
  | TNot
  | TAssert
  | TEof

let pp_token ppf = function
  | TIdent s -> Format.fprintf ppf "ident(%s)" s
  | TInt n -> Format.pp_print_int ppf n
  | TStr s -> Format.fprintf ppf "'%s'" s
  | TLparen -> Format.pp_print_char ppf '('
  | TRparen -> Format.pp_print_char ppf ')'
  | TComma -> Format.pp_print_char ppf ','
  | TDot -> Format.pp_print_char ppf '.'
  | TEq -> Format.pp_print_char ppf '='
  | TNeq -> Format.pp_print_string ppf "!="
  | TLt -> Format.pp_print_char ppf '<'
  | TLe -> Format.pp_print_string ppf "<="
  | TAnd -> Format.pp_print_char ppf '&'
  | TOr -> Format.pp_print_char ppf '|'
  | TNot -> Format.pp_print_char ppf '~'
  | TAssert -> Format.pp_print_char ppf '!'
  | TEof -> Format.pp_print_string ppf "<eof>"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let rec scan pos acc =
    if pos >= n then List.rev (TEof :: acc)
    else
      let c = input.[pos] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then scan (pos + 1) acc
      else
        match c with
        | '(' -> scan (pos + 1) (TLparen :: acc)
        | ')' -> scan (pos + 1) (TRparen :: acc)
        | ',' -> scan (pos + 1) (TComma :: acc)
        | '.' -> scan (pos + 1) (TDot :: acc)
        | '=' -> scan (pos + 1) (TEq :: acc)
        | '&' -> scan (pos + 1) (TAnd :: acc)
        | '|' -> scan (pos + 1) (TOr :: acc)
        | '~' -> scan (pos + 1) (TNot :: acc)
        | '<' ->
          if pos + 1 < n && input.[pos + 1] = '=' then
            scan (pos + 2) (TLe :: acc)
          else scan (pos + 1) (TLt :: acc)
        | '!' ->
          if pos + 1 < n && input.[pos + 1] = '=' then
            scan (pos + 2) (TNeq :: acc)
          else scan (pos + 1) (TAssert :: acc)
        | '\'' ->
          let rec close i =
            if i >= n then parse_error "unterminated string at offset %d" pos
            else if input.[i] = '\'' then i
            else close (i + 1)
          in
          let stop = close (pos + 1) in
          scan (stop + 1) (TStr (String.sub input (pos + 1) (stop - pos - 1)) :: acc)
        | c when is_digit c || c = '-' ->
          let rec stop i =
            if i < n && is_digit input.[i] then stop (i + 1) else i
          in
          let e = stop (pos + 1) in
          let text = String.sub input pos (e - pos) in
          (match int_of_string_opt text with
           | Some v -> scan e (TInt v :: acc)
           | None -> parse_error "bad number %s" text)
        | c when is_ident_start c ->
          let rec stop i =
            if i < n && is_ident_char input.[i] then stop (i + 1) else i
          in
          let e = stop pos in
          scan e (TIdent (String.sub input pos (e - pos)) :: acc)
        | c -> parse_error "illegal character %C at offset %d" c pos
  in
  scan 0 []

type state = { mutable tokens : token list }

let peek st = match st.tokens with [] -> TEof | t :: _ -> t

let advance st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let expect st t =
  if peek st = t then advance st
  else parse_error "expected %a, found %a" pp_token t pp_token (peek st)

let parse_term st =
  match peek st with
  | TIdent x ->
    advance st;
    Fo.Var x
  | TInt n ->
    advance st;
    Fo.Cst (Value.Int n)
  | TStr s ->
    advance st;
    Fo.Cst (Value.Str s)
  | t -> parse_error "expected a term, found %a" pp_token t

let rec parse_formula st =
  match peek st with
  | TIdent (("exists" | "forall") as kw) ->
    advance st;
    let rec vars acc =
      match peek st with
      | TIdent x ->
        advance st;
        vars (x :: acc)
      | TDot ->
        advance st;
        List.rev acc
      | t -> parse_error "expected a variable or '.', found %a" pp_token t
    in
    let xs = vars [] in
    if xs = [] then parse_error "%s needs at least one variable" kw;
    let body = parse_formula st in
    if kw = "exists" then Fo.exists_many xs body else Fo.forall_many xs body
  | _ -> parse_disj st

and parse_disj st =
  let left = parse_conj st in
  if peek st = TOr then begin
    advance st;
    Fo.Or (left, parse_disj st)
  end
  else left

and parse_conj st =
  let left = parse_unary st in
  if peek st = TAnd then begin
    advance st;
    Fo.And (left, parse_conj st)
  end
  else left

and parse_unary st =
  match peek st with
  | TNot ->
    advance st;
    Fo.Not (parse_unary st)
  | TAssert ->
    advance st;
    Fo.Assert (parse_unary st)
  | TLparen ->
    advance st;
    let f = parse_formula st in
    expect st TRparen;
    f
  | _ -> parse_atom st

and parse_atom st =
  match peek st with
  | TIdent "true" ->
    advance st;
    Fo.Tru
  | TIdent "false" ->
    advance st;
    Fo.Fls
  | TIdent (("const" | "null") as kw) when List.nth_opt st.tokens 1 = Some TLparen ->
    advance st;
    expect st TLparen;
    let t = parse_term st in
    expect st TRparen;
    if kw = "const" then Fo.Is_const t else Fo.Is_null t
  | TIdent name when List.nth_opt st.tokens 1 = Some TLparen ->
    advance st;
    expect st TLparen;
    let rec args acc =
      let t = parse_term st in
      if peek st = TComma then begin
        advance st;
        args (t :: acc)
      end
      else List.rev (t :: acc)
    in
    let terms = args [] in
    expect st TRparen;
    Fo.Atom (name, terms)
  | _ ->
    let t1 = parse_term st in
    (match peek st with
     | TEq ->
       advance st;
       Fo.Eq (t1, parse_term st)
     | TNeq ->
       advance st;
       Fo.Not (Fo.Eq (t1, parse_term st))
     | TLt ->
       advance st;
       Fo.Lt (t1, parse_term st)
     | TLe ->
       advance st;
       let t2 = parse_term st in
       Fo.Not (Fo.Lt (t2, t1))
     | t -> parse_error "expected a comparison, found %a" pp_token t)

let parse input =
  let st = { tokens = tokenize input } in
  let f = parse_formula st in
  (match peek st with
   | TEof -> ()
   | t -> parse_error "trailing input at %a" pp_token t);
  f
