type t =
  | T
  | F
  | U

let values = [ T; F; U ]

let equal a b = a = b

let top = T
let bot = F

let neg = function T -> F | F -> T | U -> U

let conj a b =
  match a, b with
  | F, _ | _, F -> F
  | T, T -> T
  | U, (T | U) | T, U -> U

let disj a b =
  match a, b with
  | T, _ | _, T -> T
  | F, F -> F
  | U, (F | U) | F, U -> U

let knowledge_le a b =
  match a, b with
  | U, _ -> true
  | (T | F), _ -> equal a b

let least = Some U

let pp ppf = function
  | T -> Format.pp_print_string ppf "t"
  | F -> Format.pp_print_string ppf "f"
  | U -> Format.pp_print_string ppf "u"

let to_string v = Format.asprintf "%a" pp v

let of_bool b = if b then T else F

let to_bool_opt = function T -> Some true | F -> Some false | U -> None

let implies a b = disj (neg a) b

let kmeet a b = if equal a b then a else U
