(** Signature of propositional many-valued logics (Section 5).

    A propositional many-valued logic is a pair (T, Ω) of a finite set
    of truth values and a set of connectives; here Ω always contains
    ∧, ∨ and ¬.  Logics additionally expose their {e knowledge order}
    ⪯ (Belnap/Ginsberg style): τ ⪯ τ' when τ' carries at least as much
    information as τ.  The least element, when it exists, is the
    no-information value τ₀. *)

module type S = sig
  type t

  (** All truth values, duplicates-free. *)
  val values : t list

  val equal : t -> t -> bool

  val top : t  (** the value t (true) *)

  val bot : t  (** the value f (false) *)

  val neg : t -> t
  val conj : t -> t -> t
  val disj : t -> t -> t

  (** The knowledge order ⪯. *)
  val knowledge_le : t -> t -> bool

  (** The no-information value τ₀, if the order has a least element. *)
  val least : t option

  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end
