(** Kleene's three-valued logic L3v (Figure 3) — the logic underlying
    SQL's treatment of nulls.

    The truth tables are those of Figure 3 of the paper; the knowledge
    order is u ⪯ t, u ⪯ f with t and f incomparable, and u is the
    no-information value τ₀. *)

type t =
  | T
  | F
  | U

include Truth.S with type t := t

val of_bool : bool -> t

(** [to_bool_opt v] is [Some b] for [T]/[F] and [None] for [U]. *)
val to_bool_opt : t -> bool option

(** Kleene implication a → b = ¬a ∨ b (not used by SQL, provided for
    completeness of the propositional toolkit). *)
val implies : t -> t -> t

(** The knowledge-order meet (greatest lower bound): agreement collapses
    to the common value, disagreement to [U]. *)
val kmeet : t -> t -> t
