let pattern_consts ~query_consts db =
  let db_consts = Database.consts db in
  let extra =
    List.filter
      (fun c -> not (List.exists (Value.equal_const c) db_consts))
      query_consts
  in
  db_consts @ extra

let canonical_worlds ~query_consts db =
  let consts = pattern_consts ~query_consts db in
  let nulls = Database.nulls db in
  List.map
    (fun v -> (v, Valuation.apply_db v db))
    (Valuation.enumerate_canonical ~nulls ~consts)

let cert_with_nulls ~run ~query_consts db =
  (* candidates: cert⊥(Q,D) ⊆ Qnaive(D) because a bijective valuation
     into fresh constants is itself a valuation *)
  let candidates = Naive.run_with ~run db in
  let worlds = canonical_worlds ~query_consts db in
  let answers =
    List.map (fun (v, world) -> (v, run world)) worlds
  in
  Relation.filter
    (fun t ->
      List.for_all
        (fun (v, answer) -> Relation.mem (Valuation.apply_tuple v t) answer)
        answers)
    candidates

let keep_complete r = Relation.filter Tuple.is_complete r

let cert_intersection ~run ~query_consts db =
  keep_complete (cert_with_nulls ~run ~query_consts db)

let cert_intersection_direct ~run ~query_consts db =
  (* A tuple mentioning an invented (fresh) constant cannot be in the
     intersection: by genericity some possible world avoids that
     constant altogether.  So restrict each world's answer to tuples
     over the constants of D and of the query before intersecting. *)
  let allowed = pattern_consts ~query_consts db in
  let over_allowed t =
    List.for_all
      (fun c -> List.exists (Value.equal_const c) allowed)
      (Tuple.consts t)
  in
  let world_answer world = Relation.filter over_allowed (keep_complete (run world)) in
  match canonical_worlds ~query_consts db with
  | [] -> assert false (* there is always at least the empty valuation *)
  | (_, first) :: rest ->
    List.fold_left
      (fun acc (_, world) ->
        if Relation.is_empty acc then acc
        else Relation.inter acc (world_answer world))
      (world_answer first) rest

let ra_run q db = Eval.run db q

let cert_with_nulls_ra db q =
  cert_with_nulls ~run:(ra_run q) ~query_consts:(Algebra.consts q) db

let cert_intersection_ra db q =
  cert_intersection ~run:(ra_run q) ~query_consts:(Algebra.consts q) db

let fo_run phi db =
  Incdb_logic.Semantics.certain_true Incdb_logic.Semantics.all_bool db phi

let cert_with_nulls_fo db phi =
  cert_with_nulls ~run:(fo_run phi) ~query_consts:(Fo.consts phi) db

let cert_intersection_fo db phi =
  cert_intersection ~run:(fo_run phi) ~query_consts:(Fo.consts phi) db

let certain_boolean db q =
  Eval.boolean (cert_with_nulls_ra db q)

let certain_object_ucq db q =
  if not (Classes.is_positive q) then
    invalid_arg
      "Certainty.certain_object_ucq: the certain-answer object is computed \
       for unions of conjunctive queries only";
  let answer = Naive.run db q in
  (* wrap the answer as a one-relation database and take its core *)
  let k = Relation.arity answer in
  let schema = Schema.of_list [ ("ans", List.init k (Printf.sprintf "c%d")) ] in
  let as_db =
    Database.set_relation (Database.create schema) "ans" answer
  in
  Database.relation (Homomorphism.core as_db) "ans"
