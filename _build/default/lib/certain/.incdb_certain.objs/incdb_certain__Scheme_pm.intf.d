lib/certain/scheme_pm.mli: Algebra Database Relation Schema
