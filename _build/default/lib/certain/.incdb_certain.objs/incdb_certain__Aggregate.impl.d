lib/certain/aggregate.ml: Algebra Array Certainty Database Eval Format Fun Int List Printf Relation Scheme_pm Tuple Value
