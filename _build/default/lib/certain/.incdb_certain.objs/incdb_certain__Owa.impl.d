lib/certain/owa.ml: Classes Database Eval Homomorphism Naive
