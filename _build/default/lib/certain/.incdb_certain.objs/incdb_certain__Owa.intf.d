lib/certain/owa.mli: Algebra Database Homomorphism Relation
