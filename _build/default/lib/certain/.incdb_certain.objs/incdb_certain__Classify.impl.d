lib/certain/classify.ml: Algebra Certainty Eval Fun List Relation Scheme_pm Tuple Valuation
