lib/certain/scheme_tf.ml: Algebra Classes Condition Database Eval
