lib/certain/scheme_pm.ml: Algebra Classes Condition Database Eval
