lib/certain/bag_bounds.ml: Algebra Bag_eval Bag_relation Certainty Database List Scheme_pm Valuation
