lib/certain/scheme_tf.mli: Algebra Database Relation Schema
