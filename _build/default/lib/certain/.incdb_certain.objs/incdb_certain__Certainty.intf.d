lib/certain/certainty.mli: Algebra Database Fo Relation Valuation Value
