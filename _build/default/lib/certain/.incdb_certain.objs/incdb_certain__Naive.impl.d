lib/certain/naive.ml: Array Database Eval Incdb_logic Relation Valuation
