lib/certain/aggregate.mli: Algebra Database Format
