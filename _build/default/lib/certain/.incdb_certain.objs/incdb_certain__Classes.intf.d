lib/certain/classes.mli: Algebra Condition Schema
