lib/certain/classes.ml: Algebra Condition List
