lib/certain/certainty.ml: Algebra Classes Database Eval Fo Homomorphism Incdb_logic List Naive Printf Relation Schema Tuple Valuation Value
