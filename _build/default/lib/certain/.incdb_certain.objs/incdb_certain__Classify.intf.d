lib/certain/classify.mli: Algebra Database Tuple
