lib/certain/bag_bounds.mli: Algebra Bag_relation Database Tuple
