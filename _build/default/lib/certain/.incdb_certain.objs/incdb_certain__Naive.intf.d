lib/certain/naive.mli: Algebra Database Fo Relation
