type world_semantics =
  | Cwa
  | Onto_worlds
  | Owa

exception Not_supported of string

let kind_of_semantics = function
  | Cwa -> Homomorphism.Strong_onto
  | Onto_worlds -> Homomorphism.Onto
  | Owa -> Homomorphism.Arbitrary

let is_possible_world ~semantics ~of_ candidate =
  Database.is_complete candidate
  && Homomorphism.exists ~kind:(kind_of_semantics semantics) ~from_:of_
       ~to_:candidate ()

let certain_answers_ucq db q =
  if not (Classes.is_ucq q) then
    raise
      (Not_supported
         "Owa.certain_answers_ucq: query is not a union of conjunctive \
          queries; OWA certain answers are undecidable beyond UCQs")
  else Naive.run db q

let preserved_on ~kind q ~from_ ~to_ =
  if not (Homomorphism.exists ~kind ~from_ ~to_ ()) then true
  else if not (Eval.boolean (Naive.run from_ q)) then true
  else Eval.boolean (Naive.run to_ q)
