(** Aggregation over incomplete databases (Section 6, "Value-inventing
    queries", and [23]).

    Aggregates invent values, so certain answers with nulls cannot
    describe them; the natural notion — used by [23] and by the bag
    section's □/◇ bounds — is the {e range} an aggregate can take
    across possible worlds.  This module computes:

    - {b exact ranges} by canonical-world enumeration (exponential, the
      ground truth; by genericity, cardinalities and integer-column
      aggregates are collision-pattern invariants);
    - {b polynomial bounds} for COUNT from the (Q⁺, Q?) scheme: a
      greedy pairwise-non-unifiable subset of Q⁺(D) survives as
      distinct tuples in every world (sound lower bound), and |Q?(D)|
      bounds every world's answer size from above.

    SUM/MIN/MAX ranges are finite only when no possible answer carries
    a null in the aggregated column — otherwise the unknown value can
    be an arbitrary integer and the range is reported as unbounded on
    the corresponding side(s). *)

type bound =
  | Neg_inf
  | Fin of int
  | Pos_inf

val compare_bound : bound -> bound -> int
val pp_bound : Format.formatter -> bound -> unit

(** The range of an aggregate across possible worlds.  For MIN/MAX,
    [empty_possible] signals worlds where the answer is empty and SQL
    would return NULL (the numeric bounds then describe the non-empty
    worlds). *)
type range = {
  lo : bound;
  hi : bound;
  empty_possible : bool;
}

val pp_range : Format.formatter -> range -> unit

(** [count_range db q] — exact (min, max) of |Q(v(D))| over possible
    worlds. *)
val count_range : Database.t -> Algebra.t -> int * int

(** [count_bounds db q] — polynomial-time sound bounds:
    [fst] ≤ min count and max count ≤ [snd].
    @raise Scheme_pm.Unsupported on queries outside the scheme. *)
val count_bounds : Database.t -> Algebra.t -> int * int

type op =
  | Sum
  | Min
  | Max

exception Unsupported of string

(** [range db q ~col op] — the exact range of the aggregate over the
    integer column [col] of the query's answers, across possible
    worlds; unbounded sides when a null can reach the column, per the
    module description.  SUM of an empty answer is 0 (and
    [empty_possible] is irrelevant for SUM).
    @raise Unsupported when the column can hold non-integer constants. *)
val range : Database.t -> Algebra.t -> col:int -> op -> range
