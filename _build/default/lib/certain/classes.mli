(** Syntactic query classes for which naive evaluation is exact
    (Section 4.1, Theorem 4.4).

    - {b positive} relational algebra: σ, π, ×, ∪ with selection
      conditions free of ≠ (and of null-tests): equivalent to unions of
      conjunctive queries; naive evaluation computes cert⊥ under both
      CWA and OWA.
    - {b Pos∀G}: positive relational algebra extended with division by
      a base relation (or by a subquery that is itself positive — we
      accept the more liberal variant and record it); corresponds to
      positive formulae with universal guards; naive evaluation
      computes cert⊥ under CWA. *)

(** [is_positive q] — positive RA (UCQ-equivalent). *)
val is_positive : Algebra.t -> bool

(** [is_ucq q] — synonym of {!is_positive}. *)
val is_ucq : Algebra.t -> bool

(** [is_pos_forall_g q] — positive RA + division with positive divisor. *)
val is_pos_forall_g : Algebra.t -> bool

(** [condition_is_positive θ] — no ≠, no null(·) test.  [const]
    tests are harmless (they cannot distinguish possible worlds on
    complete databases) but excluded for strictness. *)
val condition_is_positive : Condition.t -> bool

(** [dedup_projections schema q] rewrites every projection whose index
    list repeats a column — e.g. π\[0,0\] — into an equivalent query
    whose projections are duplicate-free: the repeated slots are
    re-derived by crossing with single-column projections of the same
    subquery and equating them.  The translation Qᶠ of Figure 2(a) is
    complete on complete databases only for duplicate-free projections
    (its projection rule reasons about tuple {e extensions}), so
    {!Scheme_tf} normalises its input with this pass. *)
val dedup_projections : Schema.t -> Algebra.t -> Algebra.t

(** [expand_division schema q] rewrites every division node into the
    classical σπ×− form:
    R ÷ S  =  π_head(R) − π_head( (π_head(R) × S) − R ),
    yielding a query in the fragment handled by the approximation
    schemes of Figure 2.  The schema is needed to compute arities.
    @raise Algebra.Type_error if [q] is ill-typed. *)
val expand_division : Schema.t -> Algebra.t -> Algebra.t
