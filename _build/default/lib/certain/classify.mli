(** Three-way classification of candidate answers.

    Section 6 ("Certain answers as knowledge", citing [50]) advocates
    complementing certain answers with {e negative} and {e possible}
    answers.  This module classifies any candidate tuple using the
    polynomial machinery:

    - {b Certain}: the tuple is in Q⁺(D) — an answer in every world;
    - {b Impossible}: the tuple unifies with no tuple of Q?(D) — an
      answer in no world (the certainly-false side, without the
      expensive Qᶠ translation);
    - {b Possible}: everything in between.

    Both verdict sides are sound but incomplete (the exact versions are
    coNP-hard); {!classify_exact} gives the ground truth by world
    enumeration for small instances. *)

type verdict =
  | Certain
  | Possible
  | Impossible

val verdict_to_string : verdict -> string

(** [classify db q tuple] — polynomial, sound on the Certain and
    Impossible sides. *)
val classify : Database.t -> Algebra.t -> Tuple.t -> verdict

(** [classify_exact db q tuple] — exponential ground truth: Certain iff
    an answer in every canonical world, Impossible iff in none. *)
val classify_exact : Database.t -> Algebra.t -> Tuple.t -> verdict

(** [report db q] classifies every tuple of Q?(D) (the possible
    answers) plus every certain answer, giving the full annotated
    answer of [27]-style uncertainty-annotated databases. *)
val report : Database.t -> Algebra.t -> (Tuple.t * verdict) list
