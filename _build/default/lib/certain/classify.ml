type verdict =
  | Certain
  | Possible
  | Impossible

let verdict_to_string = function
  | Certain -> "certain"
  | Possible -> "possible"
  | Impossible -> "impossible"

let classify db q tuple =
  let plus = Scheme_pm.certain_sub db q in
  if Relation.mem tuple plus then Certain
  else begin
    let maybe = Scheme_pm.possible_sup db q in
    if Relation.exists (Tuple.unifiable tuple) maybe then Possible
    else Impossible
  end

let classify_exact db q tuple =
  let query_consts = Algebra.consts q in
  let worlds = Certainty.canonical_worlds ~query_consts db in
  let hits =
    List.map
      (fun (v, world) ->
        Relation.mem (Valuation.apply_tuple v tuple) (Eval.run world q))
      worlds
  in
  if List.for_all Fun.id hits then Certain
  else if List.exists Fun.id hits then Possible
  else Impossible

let report db q =
  let plus = Scheme_pm.certain_sub db q in
  let maybe = Scheme_pm.possible_sup db q in
  let candidates = Relation.union plus maybe in
  Relation.fold
    (fun t acc ->
      let verdict = if Relation.mem t plus then Certain else Possible in
      (t, verdict) :: acc)
    candidates []
  |> List.rev
