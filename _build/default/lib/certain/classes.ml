let rec condition_is_positive = function
  | Condition.True | Condition.False -> true
  | Condition.Is_const _ | Condition.Is_null _ -> false
  | Condition.Eq _ -> true
  | Condition.Neq _ | Condition.Lt _ | Condition.Le _ -> false
  | Condition.And (a, b) | Condition.Or (a, b) ->
    condition_is_positive a && condition_is_positive b

let rec is_positive = function
  | Algebra.Rel _ | Algebra.Lit _ -> true
  | Algebra.Select (cond, q) -> condition_is_positive cond && is_positive q
  | Algebra.Project (_, q) -> is_positive q
  | Algebra.Product (q1, q2) | Algebra.Union (q1, q2)
  | Algebra.Inter (q1, q2) ->
    is_positive q1 && is_positive q2
  | Algebra.Diff _ | Algebra.Division _ | Algebra.Anti_unify_join _
  | Algebra.Dom _ ->
    false

let is_ucq = is_positive

let rec is_pos_forall_g = function
  | Algebra.Rel _ | Algebra.Lit _ -> true
  | Algebra.Select (cond, q) ->
    condition_is_positive cond && is_pos_forall_g q
  | Algebra.Project (_, q) -> is_pos_forall_g q
  | Algebra.Product (q1, q2) | Algebra.Union (q1, q2)
  | Algebra.Inter (q1, q2) ->
    is_pos_forall_g q1 && is_pos_forall_g q2
  | Algebra.Division (q1, q2) -> is_pos_forall_g q1 && is_positive q2
  | Algebra.Diff _ | Algebra.Anti_unify_join _ | Algebra.Dom _ -> false

let rec has_dup = function
  | [] -> false
  | x :: rest -> List.mem x rest || has_dup rest

let dedup_projections schema q =
  let rec go q =
    match q with
    | Algebra.Rel _ | Algebra.Lit _ | Algebra.Dom _ -> q
    | Algebra.Select (cond, q1) -> Algebra.Select (cond, go q1)
    | Algebra.Product (q1, q2) -> Algebra.Product (go q1, go q2)
    | Algebra.Union (q1, q2) -> Algebra.Union (go q1, go q2)
    | Algebra.Inter (q1, q2) -> Algebra.Inter (go q1, go q2)
    | Algebra.Diff (q1, q2) -> Algebra.Diff (go q1, go q2)
    | Algebra.Division (q1, q2) -> Algebra.Division (go q1, go q2)
    | Algebra.Anti_unify_join (q1, q2) ->
      Algebra.Anti_unify_join (go q1, go q2)
    | Algebra.Project (idxs, q1) ->
      let q1 = go q1 in
      if not (has_dup idxs) then Algebra.Project (idxs, q1)
      else begin
        (* β: the distinct columns, in order of first occurrence *)
        let beta =
          List.fold_left
            (fun acc i -> if List.mem i acc then acc else acc @ [ i ])
            [] idxs
        in
        let beta_pos i =
          let rec find j = function
            | [] -> assert false
            | x :: rest -> if x = i then j else find (j + 1) rest
          in
          find 0 beta
        in
        (* duplicate slots, each re-derived from a single-column copy of
           q1 crossed in and equated with its β column *)
        let duplicates =
          (* positions in idxs beyond the first occurrence of a column *)
          let seen = ref [] in
          List.filter_map
            (fun i ->
              if List.mem i !seen then Some i
              else begin
                seen := i :: !seen;
                None
              end)
            idxs
        in
        let width = List.length beta in
        let base = Algebra.Project (beta, q1) in
        let crossed, _ =
          List.fold_left
            (fun (acc, col) i ->
              let extended =
                Algebra.Select
                  ( Condition.eq_col (beta_pos i) col,
                    Algebra.Product (acc, Algebra.Project ([ i ], q1)) )
              in
              (extended, col + 1))
            (base, width) duplicates
        in
        (* final rearrangement, duplicate-free by construction: the
           j-th output slot takes its β column on first occurrence and
           its dedicated extra column afterwards *)
        let final =
          let seen = ref [] in
          let next_extra = ref width in
          List.map
            (fun i ->
              if List.mem i !seen then begin
                let c = !next_extra in
                incr next_extra;
                c
              end
              else begin
                seen := i :: !seen;
                beta_pos i
              end)
            idxs
        in
        ignore schema;
        Algebra.Project (final, crossed)
      end
  in
  go q

let expand_division schema q =
  let rec go q =
    match q with
    | Algebra.Rel _ | Algebra.Lit _ | Algebra.Dom _ -> q
    | Algebra.Select (cond, q1) -> Algebra.Select (cond, go q1)
    | Algebra.Project (idxs, q1) -> Algebra.Project (idxs, go q1)
    | Algebra.Product (q1, q2) -> Algebra.Product (go q1, go q2)
    | Algebra.Union (q1, q2) -> Algebra.Union (go q1, go q2)
    | Algebra.Inter (q1, q2) -> Algebra.Inter (go q1, go q2)
    | Algebra.Diff (q1, q2) -> Algebra.Diff (go q1, go q2)
    | Algebra.Anti_unify_join (q1, q2) -> Algebra.Anti_unify_join (go q1, go q2)
    | Algebra.Division (q1, q2) ->
      let r = go q1 and s = go q2 in
      let kr = Algebra.arity schema r and ks = Algebra.arity schema s in
      let n = kr - ks in
      let head = List.init n (fun i -> i) in
      let candidates = Algebra.Project (head, r) in
      (* tuples ā with some b̄ ∈ s such that (ā,b̄) ∉ r *)
      let missing =
        Algebra.Project
          (head, Algebra.Diff (Algebra.Product (candidates, s), r))
      in
      Algebra.Diff (candidates, missing)
  in
  go q
