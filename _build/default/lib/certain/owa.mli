(** Open-world reasoning (Sections 2, 3.2 and 4.1).

    The closed-world semantics ⟦D⟧ consists of the valuations' images
    v(D); the open-world semantics ⟦D⟧owa adds arbitrary supersets.
    Both — and the intermediate semantics of Theorem 4.3 — can be
    phrased through homomorphism classes: D' ∈ ⟦D⟧_H iff D' is complete
    and some homomorphism in H maps D to D' fixing constants, with
    H = all (OWA), strong onto (CWA), or onto.

    Certain answers under OWA are undecidable for FO (Theorem 3.12), so
    this module exposes exactly what is available: membership tests for
    possible worlds, and certain answers for the classes where naive
    evaluation is exact (UCQs — Theorem 4.4). *)

type world_semantics =
  | Cwa  (** strong onto homomorphisms: D' = h(D) *)
  | Onto_worlds  (** onto homomorphisms: h(dom D) = dom D' *)
  | Owa  (** arbitrary homomorphisms *)

(** [is_possible_world ~semantics ~of_:d candidate] decides
    candidate ∈ ⟦d⟧ under the chosen semantics.  [candidate] must be
    complete (otherwise [false]). *)
val is_possible_world :
  semantics:world_semantics -> of_:Database.t -> Database.t -> bool

exception Not_supported of string

(** [certain_answers_ucq db q] is cert⊥(Q, D) under OWA for a union of
    conjunctive queries, computed by naive evaluation (Theorem 4.4 —
    for UCQs the OWA and CWA certain answers coincide with it).
    @raise Not_supported if [q] is not positive. *)
val certain_answers_ucq : Database.t -> Algebra.t -> Relation.t

(** [preserved_on ~kind q ~from_ ~to_] — test utility for Theorem 4.3:
    when a homomorphism of class [kind] exists from [from_] to [to_],
    checks that a Boolean query satisfied on [from_] is satisfied on
    [to_] ([true] when no homomorphism exists or the premise fails). *)
val preserved_on :
  kind:Homomorphism.kind ->
  Algebra.t ->
  from_:Database.t ->
  to_:Database.t ->
  bool
