type merge = [ `Sum | `Collapse ]

let world_multiplicities ~merge db q tuple =
  let query_consts = Algebra.consts q in
  let worlds = Certainty.canonical_worlds ~query_consts db in
  (* valuations must act on bags: tuples merged by the valuation combine
     their multiplicities, which the set-level image would lose *)
  let apply =
    match merge with
    | `Sum -> Bag_relation.apply_valuation
    | `Collapse -> Bag_relation.apply_valuation_collapse
  in
  let base_bags =
    Database.fold
      (fun name r acc -> (name, Bag_relation.of_relation r) :: acc)
      db []
  in
  List.map
    (fun (v, world) ->
      let bags = List.map (fun (name, b) -> (name, apply v b)) base_bags in
      let answer = Bag_eval.run ~bags world q in
      Bag_relation.multiplicity (Valuation.apply_tuple v tuple) answer)
    worlds

let box ?(merge = `Sum) db q tuple =
  match world_multiplicities ~merge db q tuple with
  | [] -> assert false
  | m :: ms -> List.fold_left min m ms

let diamond ?(merge = `Sum) db q tuple =
  match world_multiplicities ~merge db q tuple with
  | [] -> assert false
  | m :: ms -> List.fold_left max m ms

let lower_bound db q =
  Bag_eval.run db (Scheme_pm.translate_plus (Database.schema db) q)

let upper_bound db q =
  Bag_eval.run db (Scheme_pm.translate_maybe (Database.schema db) q)

let certain_multiplicity_one db q tuple = box db q tuple >= 1
