(** Naive evaluation (Section 4.1).

    Nulls are treated as fresh constants: pick a bijective valuation [v]
    sending the nulls of [D] to invented constants disjoint from
    [dom(D)] and from the constants of the query, evaluate the query on
    the complete database [v(D)], and map the answers back through
    [v⁻¹]:

    Qnaive(D) = v⁻¹( Q(v(D)) ).

    For generic queries the result does not depend on the choice of
    [v].  Naive evaluation computes certain answers with nulls exactly
    for unions of conjunctive queries under OWA and for Pos∀G under CWA
    (Theorem 4.4), and more generally for queries preserved under the
    homomorphisms defining the semantics (Theorem 4.3). *)

(** [run_with ~run db] applies naive evaluation to the abstract query
    executor [run] (any function evaluating a query on a database). *)
val run_with : run:(Database.t -> Relation.t) -> Database.t -> Relation.t

(** [run db q] is naive evaluation of a relational algebra query. *)
val run : Database.t -> Algebra.t -> Relation.t

(** [run_fo db φ] is naive evaluation of an FO formula: the Boolean
    two-valued semantics on [v(D)], answers mapped back.  The answer
    relation has one column per free variable of [φ], in the order of
    {!Fo.free_vars}. *)
val run_fo : Database.t -> Fo.t -> Relation.t

(** [boolean db q] for 0-ary queries. *)
val boolean : Database.t -> Algebra.t -> bool
