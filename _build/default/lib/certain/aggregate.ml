type bound =
  | Neg_inf
  | Fin of int
  | Pos_inf

let compare_bound b1 b2 =
  match b1, b2 with
  | Neg_inf, Neg_inf | Pos_inf, Pos_inf -> 0
  | Neg_inf, _ -> -1
  | _, Neg_inf -> 1
  | Pos_inf, _ -> 1
  | _, Pos_inf -> -1
  | Fin a, Fin b -> Int.compare a b

let pp_bound ppf = function
  | Neg_inf -> Format.pp_print_string ppf "-inf"
  | Pos_inf -> Format.pp_print_string ppf "+inf"
  | Fin n -> Format.pp_print_int ppf n

type range = {
  lo : bound;
  hi : bound;
  empty_possible : bool;
}

let pp_range ppf r =
  Format.fprintf ppf "[%a, %a]%s" pp_bound r.lo pp_bound r.hi
    (if r.empty_possible then " (possibly empty)" else "")

type op =
  | Sum
  | Min
  | Max

exception Unsupported of string

let world_answers db q =
  let query_consts = Algebra.consts q in
  List.map
    (fun (_, world) -> Eval.run world q)
    (Certainty.canonical_worlds ~query_consts db)

let count_range db q =
  match List.map Relation.cardinal (world_answers db q) with
  | [] -> assert false
  | c :: cs ->
    (List.fold_left min c cs, List.fold_left max c cs)

(* a greedy set of pairwise non-unifiable tuples: they stay distinct
   under every valuation, so their number bounds each world's answer
   cardinality from below *)
let greedy_antichain r =
  Relation.fold
    (fun t chosen ->
      if List.exists (Tuple.unifiable t) chosen then chosen else t :: chosen)
    r []

let count_bounds db q =
  let plus = Scheme_pm.certain_sub db q in
  let maybe = Scheme_pm.possible_sup db q in
  (List.length (greedy_antichain plus), Relation.cardinal maybe)

let column_int t col =
  match t.(col) with
  | Value.Const (Value.Int n) -> Some n
  | Value.Const (Value.Str _) | Value.Const (Value.Gen _) ->
    raise (Unsupported "Aggregate: non-integer constant in column")
  | Value.Null _ -> None

let range db q ~col op =
  let k = Algebra.arity (Database.schema db) q in
  if col < 0 || col >= k then
    raise (Unsupported (Printf.sprintf "Aggregate: column %d of arity %d" col k));
  (* does any possible answer put a null in the column?  Q? is an
     over-approximation, so a null-free Q? column certifies finiteness *)
  let possible = Scheme_pm.possible_sup db q in
  let has_null =
    Relation.exists (fun t -> Value.is_null t.(col)) possible
  in
  (* probe for non-integer constants regardless *)
  Relation.iter (fun t -> ignore (column_int t col)) possible;
  if has_null then begin
    (* the unknown value is an arbitrary integer, so the range is
       unbounded towards the side the unknown can push; certain answers
       with a constant in the column still clamp the other side *)
    let certain = Scheme_pm.certain_sub db q in
    let certain_values =
      Relation.fold
        (fun t acc ->
          match column_int t col with Some n -> n :: acc | None -> acc)
        certain []
    in
    (* Q⁺ non-empty certifies a non-empty answer in every world *)
    let empty_possible = Relation.is_empty certain in
    match op with
    | Sum -> { lo = Neg_inf; hi = Pos_inf; empty_possible = false }
    | Min ->
      let hi =
        (* a certain tuple with value m forces MIN ≤ m in every world *)
        match certain_values with
        | [] -> Pos_inf
        | v :: vs -> Fin (List.fold_left min v vs)
      in
      { lo = Neg_inf; hi; empty_possible }
    | Max ->
      let lo =
        match certain_values with
        | [] -> Neg_inf
        | v :: vs -> Fin (List.fold_left max v vs)
      in
      { lo; hi = Pos_inf; empty_possible }
  end
  else begin
    let answers = world_answers db q in
    let aggregate_world r =
      let values =
        Relation.fold
          (fun t acc ->
            match column_int t col with
            | Some n -> n :: acc
            | None -> acc (* unreachable: certified null-free *))
          r []
      in
      match op, values with
      | Sum, vs -> Some (List.fold_left ( + ) 0 vs)
      | (Min | Max), [] -> None
      | Min, v :: vs -> Some (List.fold_left min v vs)
      | Max, v :: vs -> Some (List.fold_left max v vs)
    in
    let results = List.map aggregate_world answers in
    let empty_possible = List.exists (fun r -> r = None) results in
    let values = List.filter_map Fun.id results in
    match values with
    | [] ->
      (* every world is empty *)
      (match op with
       | Sum -> { lo = Fin 0; hi = Fin 0; empty_possible = false }
       | Min | Max -> { lo = Pos_inf; hi = Neg_inf; empty_possible = true })
    | v :: vs ->
      {
        lo = Fin (List.fold_left min v vs);
        hi = Fin (List.fold_left max v vs);
        empty_possible;
      }
  end
