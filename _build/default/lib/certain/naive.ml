let run_with ~run db =
  let nulls = Database.nulls db in
  let v = Valuation.bijective_fresh ~nulls in
  let answers = run (Valuation.apply_db v db) in
  Relation.map ~arity:(Relation.arity answers)
    (Array.map (Valuation.inverse_fresh ~nulls))
    answers

let run db q = run_with ~run:(fun d -> Eval.run d q) db

let run_fo db phi =
  let run d =
    Incdb_logic.Semantics.certain_true Incdb_logic.Semantics.all_bool d phi
  in
  run_with ~run db

let boolean db q = Eval.boolean (run db q)
